//! Model checking of the fan-out/join completion protocol.
//!
//! The scenario the serving tier cares about: the *last* outstanding shard
//! completes at the same moment a hedged duplicate of it lands. Under any
//! interleaving the join must fire exactly once, with the first result to
//! arrive, and no completion may be lost — a lost wakeup here would leave
//! a request hanging forever with every shard finished.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use smat_sanitize::sync::AtomicU32;
use smat_sanitize::{model, DiagCode, DiagnosticsExt, ModelConfig, ModelReport};
use smat_shard::FanoutJoin;

/// Clean = zero error-severity findings, and either exhaustive exploration
/// or a C008 truncation note stating the cap.
fn assert_clean(report: &ModelReport) {
    println!("{}", report.summary());
    assert!(report.is_clean(), "{report:?}");
    assert!(report.findings.iter().all(|d| !d.is_error()), "{report:?}");
    if !report.exhausted {
        assert!(
            report
                .findings
                .codes()
                .contains(&DiagCode::ModelExplorationTruncated),
            "truncated exploration must carry the C008 cap note: {report:?}"
        );
    }
}

#[test]
fn last_shard_racing_its_hedge_fires_the_join_exactly_once() {
    let cfg = ModelConfig {
        max_schedules: 40_000,
        ..ModelConfig::named("shard.join_hedge_race")
    };
    let report = model::check(cfg, || {
        let fired = Arc::new(AtomicU32::new(0));
        let f = Arc::clone(&fired);
        let join: Arc<FanoutJoin<u32>> = Arc::new(FanoutJoin::new(
            2,
            Box::new(move |parts| {
                f.fetch_add(1, Ordering::SeqCst);
                assert_eq!(parts[0], 100, "shard 0 delivered before the race");
                assert!(
                    parts[1] == 201 || parts[1] == 202,
                    "shard 1 must carry whichever lane won"
                );
            }),
        ));
        // Shard 0 already completed before the race of interest.
        assert!(join.complete(0, 100));

        // The race: shard 1's original and its hedge deliver concurrently.
        let (j1, j2) = (Arc::clone(&join), Arc::clone(&join));
        let original = model::spawn(move || j1.complete(1, 201));
        let hedge = model::spawn(move || j2.complete(1, 202));
        let won1 = original.join();
        let won2 = hedge.join();

        assert_eq!(
            u32::from(won1) + u32::from(won2),
            1,
            "exactly one lane's completion is accepted"
        );
        assert_eq!(
            fired.load(Ordering::SeqCst),
            1,
            "the join fires exactly once — no lost completion, no double fire"
        );
        assert!(join.is_done());
    });
    assert_clean(&report);
    assert!(report.schedules > 1, "{}", report.summary());
}

#[test]
fn concurrent_distinct_shards_never_lose_a_completion() {
    let cfg = ModelConfig {
        max_schedules: 40_000,
        ..ModelConfig::named("shard.join_concurrent")
    };
    let report = model::check(cfg, || {
        let fired = Arc::new(AtomicU32::new(0));
        let f = Arc::clone(&fired);
        let join: Arc<FanoutJoin<u32>> = Arc::new(FanoutJoin::new(
            3,
            Box::new(move |parts| {
                f.fetch_add(1, Ordering::SeqCst);
                assert_eq!(parts, vec![10, 11, 12], "parts arrive in shard order");
            }),
        ));
        let workers: Vec<_> = (0..3u32)
            .map(|i| {
                let j = Arc::clone(&join);
                model::spawn(move || j.complete(i as usize, 10 + i))
            })
            .collect();
        for w in workers {
            assert!(w.join(), "distinct shards are all first completions");
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1, "joined exactly once");
    });
    assert_clean(&report);
}
