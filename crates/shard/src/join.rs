//! The fan-out/join completion protocol.
//!
//! A sharded request fans out into one sub-request per shard, executed by
//! whichever device workers hold the shards — possibly with hedged
//! duplicates racing the originals under the recovery ladder. The join
//! must deliver exactly one response when the last part lands, never lose
//! a completion, and never double-fire when a hedge and the original
//! finish together. [`FanoutJoin`] is that protocol, small enough to
//! model-check exhaustively (see `tests/model_join.rs`):
//!
//! * completions are **idempotent per shard index** — the first result for
//!   a shard wins, later duplicates are dropped;
//! * the join callback runs **exactly once**, on whichever thread delivers
//!   the final outstanding part;
//! * the callback is invoked **outside the lock**, so a callback that
//!   re-enters serving machinery (sending the joined response) cannot
//!   deadlock against a racing completion.

use smat_sanitize::sync::Mutex;

/// The join continuation: receives every part in shard order.
pub type JoinCallback<P> = Box<dyn FnOnce(Vec<P>) + Send>;

struct JoinState<P> {
    /// One slot per shard; `Some` once the shard's first result landed.
    parts: Vec<Option<P>>,
    /// Shards still missing a first result.
    remaining: usize,
    /// Taken (under the lock) by the completion that zeroes `remaining`,
    /// invoked after the lock is released.
    on_complete: Option<JoinCallback<P>>,
}

/// Tracks the outstanding shards of one fanned-out request and fires a
/// callback exactly once when all of them have completed.
pub struct FanoutJoin<P> {
    state: Mutex<JoinState<P>>,
}

impl<P: Send> FanoutJoin<P> {
    /// A join over `n` shards; `on_complete` receives the parts in shard
    /// order once each shard has delivered a result.
    ///
    /// # Panics
    /// Panics if `n == 0` (an empty fan-out has nothing to join).
    pub fn new(n: usize, on_complete: JoinCallback<P>) -> Self {
        assert!(n > 0, "fan-out needs at least one shard");
        FanoutJoin {
            state: Mutex::labeled(
                "shard.join",
                JoinState {
                    parts: (0..n).map(|_| None).collect(),
                    remaining: n,
                    on_complete: Some(on_complete),
                },
            ),
        }
    }

    /// Delivers shard `idx`'s result. Returns `true` if this call was the
    /// shard's *first* completion (it was stored); `false` if a duplicate
    /// — e.g. a hedge that lost the race — was dropped. If this call
    /// filled the last outstanding slot, the join callback runs on this
    /// thread before the method returns, after the lock is released.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn complete(&self, idx: usize, part: P) -> bool {
        let fire = {
            // POLICY (poisoning): recover. The state is a plain slot table;
            // every mutation below leaves it consistent at every panic
            // point (the callback runs outside the critical section).
            let mut st = self.state.lock_or_recover();
            assert!(idx < st.parts.len(), "shard index {idx} out of range");
            // Already fired (slots were drained) or this shard already has
            // a result: the duplicate is dropped.
            if st.remaining == 0 || st.parts[idx].is_some() {
                return false;
            }
            st.parts[idx] = Some(part);
            st.remaining -= 1;
            if st.remaining == 0 {
                let parts = st
                    .parts
                    .iter_mut()
                    .map(|p| p.take().expect("remaining == 0 implies every slot filled"))
                    .collect::<Vec<_>>();
                let cb = st
                    .on_complete
                    .take()
                    .expect("remaining hits zero exactly once");
                Some((cb, parts))
            } else {
                None
            }
        };
        if let Some((cb, parts)) = fire {
            cb(parts);
        }
        true
    }

    /// Shards still waiting for their first completion.
    pub fn pending(&self) -> usize {
        // POLICY (poisoning): recover. Read-only.
        self.state.lock_or_recover().remaining
    }

    /// Whether every shard has completed (and the callback has been taken).
    pub fn is_done(&self) -> bool {
        self.pending() == 0
    }
}

impl<P> std::fmt::Debug for FanoutJoin<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // POLICY (poisoning): recover. Read-only.
        let st = self.state.lock_or_recover();
        f.debug_struct("FanoutJoin")
            .field("shards", &st.parts.len())
            .field("remaining", &st.remaining)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    type CountingJoin = (Arc<FanoutJoin<u32>>, Arc<AtomicUsize>, Arc<Mutex<Vec<u32>>>);

    fn counting_join(n: usize) -> CountingJoin {
        let fired = Arc::new(AtomicUsize::new(0));
        let seen = Arc::new(Mutex::labeled("test.join_seen", Vec::new()));
        let (f, s) = (Arc::clone(&fired), Arc::clone(&seen));
        let join = Arc::new(FanoutJoin::new(
            n,
            Box::new(move |parts| {
                f.fetch_add(1, Ordering::SeqCst);
                *s.lock_or_recover() = parts;
            }),
        ));
        (join, fired, seen)
    }

    #[test]
    fn fires_once_with_parts_in_shard_order() {
        let (join, fired, seen) = counting_join(3);
        assert_eq!(join.pending(), 3);
        assert!(join.complete(2, 20));
        assert!(join.complete(0, 0));
        assert_eq!(fired.load(Ordering::SeqCst), 0, "not done yet");
        assert!(join.complete(1, 10));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(*seen.lock_or_recover(), vec![0, 10, 20]);
        assert!(join.is_done());
    }

    #[test]
    fn duplicate_completions_are_dropped_first_wins() {
        let (join, fired, seen) = counting_join(2);
        assert!(join.complete(0, 1));
        assert!(!join.complete(0, 99), "hedge duplicate must be dropped");
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        assert!(join.complete(1, 2));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(*seen.lock_or_recover(), vec![1, 2], "first value wins");
        assert!(!join.complete(1, 3), "late duplicate after the join fired");
        assert_eq!(fired.load(Ordering::SeqCst), 1, "never double-fires");
    }

    #[test]
    fn single_shard_join_fires_immediately() {
        let (join, fired, _) = counting_join(1);
        assert!(join.complete(0, 7));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shard_join_is_rejected() {
        let _ = FanoutJoin::<u32>::new(0, Box::new(|_| {}));
    }
}
