//! Per-shard prepare and the cooperative multi-device executor.

use std::sync::Arc;

use smat::{PrepareTimings, Smat, SmatConfig};
use smat_formats::{Csr, Dense, Element};
use smat_gpusim::{Gpu, SimError};

use crate::partition::{partition, ShardPlan, ShardPolicy};

/// A matrix prepared shard-by-shard: each shard ran the full pipeline
/// (reorder → pack → BCSR) independently and carries its own fingerprint
/// and preflight cache, exactly as if it were a standalone matrix.
///
/// `spmm` fans a request out across a device pool and joins the partial
/// products by row concatenation; see the crate docs for why the join is
/// exact.
pub struct ShardedSmat<T> {
    plan: Arc<ShardPlan>,
    shards: Vec<Smat<T>>,
    timings: PrepareTimings,
}

impl<T: Element> ShardedSmat<T> {
    /// Partitions `a` under `policy` and prepares every shard with the
    /// same configuration. Shards prepare sequentially, so the accumulated
    /// [`PrepareTimings`] is the pool-level `T_init`.
    pub fn prepare(a: &Csr<T>, config: SmatConfig, policy: &ShardPolicy) -> Self {
        let plan = Arc::new(partition(a, policy));
        let mut shards = Vec::with_capacity(plan.nshards());
        let mut timings: Option<PrepareTimings> = None;
        for d in &plan.shards {
            let s = Smat::prepare(&a.slice_rows(d.row_start, d.row_end), config.clone());
            match &mut timings {
                Some(t) => t.accumulate(&s.prepare_timings()),
                None => timings = Some(s.prepare_timings()),
            }
            shards.push(s);
        }
        ShardedSmat {
            plan,
            shards,
            timings: timings.expect("a plan always has at least one shard"),
        }
    }

    /// The partition this matrix was prepared under.
    pub fn plan(&self) -> &Arc<ShardPlan> {
        &self.plan
    }

    /// The prepared shards, in plan order.
    pub fn shards(&self) -> &[Smat<T>] {
        &self.shards
    }

    /// Accumulated prepare timings across every shard (`T_init`).
    pub fn timings(&self) -> PrepareTimings {
        self.timings
    }

    /// Rows the right-hand side must have (the shared column count).
    pub fn input_ncols(&self) -> usize {
        self.plan.ncols
    }

    /// Cooperative multi-device SpMM: shard `i` executes on
    /// `gpus[i % gpus.len()]`, all shards concurrently, and the partial
    /// products are joined by [`Dense::vconcat`] in shard order.
    ///
    /// Any shard failure fails the whole product with the first failing
    /// shard's error (in shard order, deterministically) — retry/hedging
    /// policy lives a layer up, in the serving tier's recovery ladder.
    ///
    /// # Errors
    /// Returns the first (by shard index) [`SimError`] any shard hit.
    ///
    /// # Panics
    /// Panics if `gpus` is empty or `b` has the wrong row count.
    pub fn try_spmm_on_pool(&self, gpus: &[Gpu], b: &Dense<T>) -> Result<Dense<T>, SimError> {
        assert!(!gpus.is_empty(), "device pool must not be empty");
        assert_eq!(
            self.plan.ncols,
            b.nrows(),
            "B must have {} rows, got {}",
            self.plan.ncols,
            b.nrows()
        );
        let results: Vec<Result<Dense<T>, SimError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .enumerate()
                .map(|(i, shard)| {
                    let gpu = &gpus[i % gpus.len()];
                    scope.spawn(move || shard.try_spmm_on(gpu, b).map(|run| run.c))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let mut parts = Vec::with_capacity(results.len());
        for r in results {
            parts.push(r?);
        }
        Ok(Dense::vconcat(&parts.iter().collect::<Vec<_>>()))
    }
}

impl<T> std::fmt::Debug for ShardedSmat<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSmat")
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::estimated_csr_bytes;
    use smat_formats::F16;
    use smat_gpusim::DeviceConfig;
    use smat_workloads::{dense_b, random_uniform};

    fn sharded_setup(nshards: usize) -> (Csr<F16>, ShardedSmat<F16>) {
        let a: Csr<F16> = random_uniform(192, 96, 0.88, 99);
        let policy = ShardPolicy {
            max_bytes: estimated_csr_bytes(&a).div_ceil(nshards),
        };
        let sharded = ShardedSmat::prepare(&a, SmatConfig::default(), &policy);
        assert_eq!(sharded.plan().nshards(), nshards);
        (a, sharded)
    }

    #[test]
    fn sharded_product_is_bitwise_identical_to_unsharded() {
        let (a, sharded) = sharded_setup(3);
        let b = dense_b::<F16>(96, 16);
        let whole = Smat::prepare(&a, SmatConfig::default()).spmm(&b).c;
        let gpus = Gpu::pool(DeviceConfig::a100_sxm4_40gb(), 3);
        let joined = sharded.try_spmm_on_pool(&gpus, &b).expect("pool run");
        assert_eq!(joined, whole, "sharded join must be bitwise identical");
    }

    #[test]
    fn fewer_devices_than_shards_wraps_round_robin() {
        let (a, sharded) = sharded_setup(4);
        let b = dense_b::<F16>(96, 8);
        let whole = Smat::prepare(&a, SmatConfig::default()).spmm(&b).c;
        let gpus = Gpu::pool(DeviceConfig::a100_sxm4_40gb(), 2);
        let joined = sharded.try_spmm_on_pool(&gpus, &b).expect("pool run");
        assert_eq!(joined, whole);
    }

    #[test]
    fn per_shard_fingerprints_are_distinct_and_timings_accumulate() {
        let (_, sharded) = sharded_setup(3);
        let fps: Vec<_> = sharded.shards().iter().map(Smat::fingerprint).collect();
        assert!(
            fps.windows(2).all(|w| w[0] != w[1]),
            "distinct shards must fingerprint differently"
        );
        let total = sharded.timings();
        let sum: f64 = sharded
            .shards()
            .iter()
            .map(|s| s.prepare_timings().total_ms)
            .sum();
        assert!((total.total_ms - sum).abs() < 1e-9);
    }

    #[test]
    fn single_shard_plan_degenerates_to_plain_prepare() {
        let a: Csr<F16> = random_uniform(64, 64, 0.9, 5);
        let sharded = ShardedSmat::prepare(&a, SmatConfig::default(), &ShardPolicy::default());
        assert!(!sharded.plan().is_sharded());
        let b = dense_b::<F16>(64, 4);
        let whole = Smat::prepare(&a, SmatConfig::default()).spmm(&b).c;
        let gpus = [Gpu::a100()];
        assert_eq!(sharded.try_spmm_on_pool(&gpus, &b).unwrap(), whole);
    }
}
