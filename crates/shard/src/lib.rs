//! `smat-shard`: 1D row partitioning and cooperative multi-device SpMM.
//!
//! Everything below this crate dispatches a whole prepared matrix to one
//! simulated device. This crate decomposes a CSR operand into
//! device-sized, nnz-balanced **row shards** ([`partition()`]), runs the
//! existing prepare pipeline per shard ([`ShardedSmat::prepare`]) so each
//! shard carries its own reordering, fingerprint, and plan-cache line, and
//! fans one SpMM request out across a device pool
//! ([`ShardedSmat::try_spmm_on_pool`]), joining the partial products by row
//! concatenation.
//!
//! Row partitioning is the exactness trick: every nonzero of row `i` lives
//! in exactly one shard, so shard `s`'s product is precisely rows
//! `[row_start, row_end)` of the full product and the join is
//! [`Dense::vconcat`](smat_formats::Dense::vconcat) — a buffer append, no
//! arithmetic. The sharded result is therefore bitwise identical to the
//! unsharded path wherever the per-row accumulation is exact (the
//! small-integer discipline every conformance test uses).
//!
//! The [`FanoutJoin`] completion protocol is the concurrent core: it
//! tracks outstanding shards behind a checked `smat-sanitize` mutex, makes
//! duplicate completions (a hedge racing the original) idempotent, and
//! fires the join callback exactly once, outside the lock. The serving
//! tier reuses it for its two-level scheduler.

pub mod executor;
pub mod join;
pub mod partition;

pub use executor::ShardedSmat;
pub use join::FanoutJoin;
pub use partition::{estimated_csr_bytes, partition, ShardDescriptor, ShardPlan, ShardPolicy};
