//! The 1D row partitioner: contiguous, nnz-balanced row ranges sized to a
//! bytes-per-shard budget.
//!
//! The partitioner works on the *unprepared* CSR operand: shards are cut
//! before any reordering, so a shard's row range refers to original row
//! indices and the join is a plain concatenation in shard order. Balance
//! is by nonzero count (the paper's cost model charges `T_e` per block,
//! and blocks track nnz far better than rows on power-law matrices), with
//! the byte budget deciding *how many* shards to cut.

use smat_formats::{Csr, Element};

/// Default shard budget: 64 MiB of estimated CSR payload per device.
/// Small enough that several shards of a big operand fit one simulated
/// A100, large enough that small matrices never shard.
pub const DEFAULT_MAX_BYTES: usize = 64 << 20;

/// Partitioning policy: the target byte budget per shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub struct ShardPolicy {
    /// Target bytes per shard, measured with [`estimated_csr_bytes`].
    /// `0` disables sharding (everything stays in one shard).
    pub max_bytes: usize,
}

impl Default for ShardPolicy {
    fn default() -> Self {
        ShardPolicy {
            max_bytes: DEFAULT_MAX_BYTES,
        }
    }
}

/// One shard: a contiguous range of original rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub struct ShardDescriptor {
    /// Position in the plan (and in the joined output).
    pub index: usize,
    /// First original row owned by this shard (inclusive).
    pub row_start: usize,
    /// One past the last original row owned by this shard.
    pub row_end: usize,
    /// Nonzeros in the shard's rows.
    pub nnz: usize,
    /// Estimated CSR bytes of the shard (same model as
    /// [`estimated_csr_bytes`]).
    pub est_bytes: usize,
}

impl ShardDescriptor {
    /// Number of rows the shard owns.
    pub fn nrows(&self) -> usize {
        self.row_end - self.row_start
    }
}

/// The full partition of one matrix: shard descriptors in row order.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct ShardPlan {
    /// Rows of the partitioned matrix.
    pub nrows: usize,
    /// Columns of the partitioned matrix (shared by every shard).
    pub ncols: usize,
    /// Total nonzeros across shards.
    pub nnz: usize,
    /// Estimated CSR bytes of the whole operand.
    pub est_bytes: usize,
    /// The shards, ordered by `row_start`; covers `[0, nrows)` exactly.
    pub shards: Vec<ShardDescriptor>,
}

impl ShardPlan {
    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.shards.len()
    }

    /// Whether the plan actually splits the matrix (more than one shard).
    pub fn is_sharded(&self) -> bool {
        self.shards.len() > 1
    }

    /// Row count per shard, in shard order — the argument
    /// [`Dense::split_rows`](smat_formats::Dense::split_rows) expects.
    pub fn heights(&self) -> Vec<usize> {
        self.shards.iter().map(ShardDescriptor::nrows).collect()
    }
}

/// Estimated in-memory CSR footprint: one value and one column index per
/// nonzero plus the row-pointer array. The simulator charges index
/// traffic at `usize` width, so the estimate uses the same.
pub fn estimated_csr_bytes<T: Element>(a: &Csr<T>) -> usize {
    a.nnz() * (size_of::<T>() + size_of::<usize>()) + (a.nrows() + 1) * size_of::<usize>()
}

fn range_bytes<T: Element>(nrows: usize, nnz: usize) -> usize {
    nnz * (size_of::<T>() + size_of::<usize>()) + (nrows + 1) * size_of::<usize>()
}

/// Cuts `a` into nnz-balanced contiguous row shards such that each shard's
/// estimated bytes stay near `policy.max_bytes`.
///
/// The shard count is `ceil(total_bytes / max_bytes)`, clamped to the row
/// count (a shard owns at least one row); boundaries then equalize the
/// *cumulative nonzero count*, so a dense stripe produces narrow shards
/// and an empty stripe wide ones. `max_bytes == 0` disables splitting.
/// The shards always cover `[0, nrows)` exactly, in order.
pub fn partition<T: Element>(a: &Csr<T>, policy: &ShardPolicy) -> ShardPlan {
    let total_bytes = estimated_csr_bytes(a);
    let want = if policy.max_bytes == 0 {
        1
    } else {
        total_bytes.div_ceil(policy.max_bytes).max(1)
    };
    let nshards = want.min(a.nrows().max(1));
    let total_nnz = a.nnz();

    let mut shards = Vec::with_capacity(nshards);
    let mut start = 0usize;
    let mut cum = 0usize;
    for s in 0..nshards {
        let end = if s + 1 == nshards || a.nrows() == 0 {
            // The last shard absorbs everything left, including trailing
            // empty rows the nnz walk would otherwise never reach.
            a.nrows()
        } else {
            // Later shards must each still receive at least one row.
            let max_end = a.nrows() - (nshards - 1 - s);
            let target = ((s + 1) * total_nnz).div_ceil(nshards);
            let mut end = start;
            while end < max_end {
                cum += a.row_nnz(end);
                end += 1;
                if cum >= target {
                    break;
                }
            }
            end
        };
        let nnz = a.row_ptr()[end] - a.row_ptr()[start];
        shards.push(ShardDescriptor {
            index: s,
            row_start: start,
            row_end: end,
            nnz,
            est_bytes: range_bytes::<T>(end - start, nnz),
        });
        start = end;
    }

    ShardPlan {
        nrows: a.nrows(),
        ncols: a.ncols(),
        nnz: total_nnz,
        est_bytes: total_bytes,
        shards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_formats::F16;
    use smat_workloads::random_uniform;

    fn check_cover(plan: &ShardPlan) {
        let mut at = 0;
        let mut nnz = 0;
        for (i, s) in plan.shards.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.row_start, at, "shards must tile the row space");
            assert!(s.row_end >= s.row_start);
            at = s.row_end;
            nnz += s.nnz;
        }
        assert_eq!(at, plan.nrows, "shards must cover every row");
        assert_eq!(nnz, plan.nnz, "every nonzero lands in exactly one shard");
    }

    #[test]
    fn small_matrix_stays_one_shard() {
        let a: Csr<F16> = random_uniform(64, 64, 0.9, 7);
        let plan = partition(&a, &ShardPolicy::default());
        assert_eq!(plan.nshards(), 1);
        assert!(!plan.is_sharded());
        check_cover(&plan);
    }

    #[test]
    fn byte_budget_drives_shard_count() {
        let a: Csr<F16> = random_uniform(256, 256, 0.9, 11);
        let total = estimated_csr_bytes(&a);
        let plan = partition(
            &a,
            &ShardPolicy {
                max_bytes: total.div_ceil(4),
            },
        );
        assert_eq!(plan.nshards(), 4);
        check_cover(&plan);
        // nnz balance: no shard more than ~2x the mean.
        let mean = plan.nnz as f64 / 4.0;
        for s in &plan.shards {
            assert!(
                (s.nnz as f64) < 2.0 * mean + a.ncols() as f64,
                "shard {} holds {} nnz vs mean {mean}",
                s.index,
                s.nnz
            );
        }
    }

    #[test]
    fn zero_budget_disables_sharding() {
        let a: Csr<F16> = random_uniform(128, 32, 0.8, 3);
        let plan = partition(&a, &ShardPolicy { max_bytes: 0 });
        assert_eq!(plan.nshards(), 1);
        check_cover(&plan);
    }

    #[test]
    fn tiny_budget_clamps_to_one_row_per_shard() {
        let a: Csr<F16> = random_uniform(8, 16, 0.5, 5);
        let plan = partition(&a, &ShardPolicy { max_bytes: 1 });
        assert_eq!(plan.nshards(), 8, "shard count clamps to the row count");
        check_cover(&plan);
        assert!(plan.shards.iter().all(|s| s.nrows() == 1));
    }

    #[test]
    fn empty_matrix_partitions_to_one_empty_shard() {
        let a: Csr<F16> = Csr::empty(0, 10);
        let plan = partition(&a, &ShardPolicy { max_bytes: 1 });
        assert_eq!(plan.nshards(), 1);
        assert_eq!(plan.shards[0].nrows(), 0);
        check_cover(&plan);
    }

    #[test]
    fn trailing_empty_rows_belong_to_the_last_shard() {
        // Rows 0..4 dense-ish, rows 4..12 empty: the nnz walk satisfies
        // every target early; the tail must still be covered.
        let mut coo = smat_formats::Coo::new(12, 8);
        for i in 0..4 {
            for j in 0..8 {
                coo.push(i, j, F16::from_f64(1.0));
            }
        }
        let a = coo.to_csr();
        let plan = partition(&a, &ShardPolicy { max_bytes: 80 });
        assert!(plan.is_sharded());
        check_cover(&plan);
        assert_eq!(plan.shards.last().unwrap().row_end, 12);
    }

    #[test]
    fn plan_serializes() {
        let a: Csr<F16> = random_uniform(32, 32, 0.9, 1);
        let plan = partition(&a, &ShardPolicy { max_bytes: 256 });
        let json = serde_json::to_string(&plan).unwrap();
        assert!(json.contains("\"row_start\""), "{json}");
    }
}
