//! Raw-array invariant validators shared by the typed constructors
//! (`Csr::try_from_raw`, `Bcsr::try_from_raw`, `Permutation::try_from_vec`)
//! and the `smat-analyze` format-verifier pass.
//!
//! Each function scans the raw parts of one format and returns *all*
//! violations it finds as typed [`Diagnostic`]s, in deterministic scan
//! order, rather than panicking at the first. The panicking constructors
//! keep their historical behaviour by panicking with the first
//! diagnostic's message.

use smat_diag::{DiagCode, Diagnostic, Location};

/// Validates the CSR invariants over raw parts: `row_ptr` of length
/// `nrows + 1` running monotonically from `0` to `nnz`, strictly
/// increasing in-range column indices per row, and `col_idx`/`values`
/// arity agreement.
pub fn validate_csr_parts(
    nrows: usize,
    ncols: usize,
    row_ptr: &[usize],
    col_idx: &[usize],
    n_values: usize,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if col_idx.len() != n_values {
        diags.push(Diagnostic::new(
            DiagCode::ArityMismatch,
            Location::Whole,
            format!(
                "col_idx has {} entries but values has {n_values}",
                col_idx.len()
            ),
        ));
    }
    if row_ptr.len() != nrows + 1 {
        diags.push(Diagnostic::new(
            DiagCode::RowPtrLength,
            Location::Whole,
            format!(
                "row_ptr must have nrows+1 = {} entries, found {}",
                nrows + 1,
                row_ptr.len()
            ),
        ));
        // Every later check indexes row_ptr positionally; bail out.
        return diags;
    }
    if nrows > 0 && row_ptr[0] != 0 {
        diags.push(Diagnostic::new(
            DiagCode::RowPtrStart,
            Location::RowPtr { index: 0 },
            format!("row_ptr must start at 0, found {}", row_ptr[0]),
        ));
    }
    if *row_ptr.last().unwrap_or(&0) != col_idx.len() {
        diags.push(Diagnostic::new(
            DiagCode::RowPtrEnd,
            Location::RowPtr { index: nrows },
            format!(
                "row_ptr must end at nnz = {}, found {}",
                col_idx.len(),
                row_ptr[nrows]
            ),
        ));
    }
    for i in 0..nrows {
        if row_ptr[i] > row_ptr[i + 1] {
            diags.push(Diagnostic::new(
                DiagCode::RowPtrNonMonotone,
                Location::RowPtr { index: i + 1 },
                format!(
                    "row_ptr must be monotone: row_ptr[{i}] = {} > row_ptr[{}] = {}",
                    row_ptr[i],
                    i + 1,
                    row_ptr[i + 1]
                ),
            ));
            continue;
        }
        let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
        if hi > col_idx.len() {
            // Already reported as RowPtrEnd or monotonicity damage upstream;
            // don't index out of bounds.
            continue;
        }
        let cols = &col_idx[lo..hi];
        for (k, w) in cols.windows(2).enumerate() {
            if w[0] >= w[1] {
                diags.push(Diagnostic::new(
                    DiagCode::ColIdxUnsorted,
                    Location::Pos { pos: lo + k + 1 },
                    format!(
                        "column indices in row {i} must be strictly increasing: \
                         col_idx[{}] = {} after {}",
                        lo + k + 1,
                        w[1],
                        w[0]
                    ),
                ));
            }
        }
        for (k, &c) in cols.iter().enumerate() {
            if c >= ncols {
                diags.push(Diagnostic::new(
                    DiagCode::ColIdxOutOfBounds,
                    Location::Pos { pos: lo + k },
                    format!("column index {c} out of range in row {i} (ncols = {ncols})"),
                ));
            }
        }
    }
    diags
}

/// Validates the BCSR invariants over raw parts: nonzero block dimensions,
/// a block-granularity `row_ptr` with the CSR shape properties, strictly
/// increasing in-range block-column indices per block row, payload arity
/// `nblocks·h·w`, and an `nnz` no larger than the stored payload capacity.
#[allow(clippy::too_many_arguments)]
pub fn validate_bcsr_parts(
    nrows: usize,
    ncols: usize,
    block_h: usize,
    block_w: usize,
    row_ptr: &[usize],
    col_idx: &[usize],
    n_values: usize,
    nnz: usize,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if block_h == 0 || block_w == 0 {
        diags.push(Diagnostic::new(
            DiagCode::BlockDimZero,
            Location::Whole,
            format!("block dimensions must be nonzero, got {block_h}x{block_w}"),
        ));
        return diags;
    }
    let nblock_rows = nrows.div_ceil(block_h);
    let nblock_cols = ncols.div_ceil(block_w);

    // Block-granularity structure: same shape rules as CSR over the block
    // grid, but payload arity is nblocks·h·w rather than nnz.
    let mut structural = validate_csr_parts(
        nblock_rows,
        nblock_cols,
        row_ptr,
        col_idx,
        // Synthesize the arity CSR expects so the shared helper checks only
        // structure; BCSR payload arity is checked below.
        col_idx.len(),
    );
    diags.append(&mut structural);

    let expected_values = col_idx.len() * block_h * block_w;
    if n_values != expected_values {
        diags.push(Diagnostic::new(
            DiagCode::ArityMismatch,
            Location::Whole,
            format!(
                "values must hold nblocks*h*w = {expected_values} entries \
                 for {} blocks of {block_h}x{block_w}, found {n_values}",
                col_idx.len()
            ),
        ));
    }
    if nnz > expected_values {
        diags.push(Diagnostic::new(
            DiagCode::NnzInconsistent,
            Location::Whole,
            format!("declared nnz = {nnz} exceeds stored block capacity {expected_values}"),
        ));
    }
    diags
}

/// Validates that `perm` is a bijection of `0..perm.len()`.
pub fn validate_permutation(perm: &[usize]) -> Vec<Diagnostic> {
    let n = perm.len();
    let mut diags = Vec::new();
    let mut seen = vec![false; n];
    for (i, &p) in perm.iter().enumerate() {
        if p >= n {
            diags.push(Diagnostic::new(
                DiagCode::PermOutOfRange,
                Location::Perm { index: i },
                format!("permutation image {p} out of range 0..{n}"),
            ));
        } else if seen[p] {
            diags.push(Diagnostic::new(
                DiagCode::PermDuplicate,
                Location::Perm { index: i },
                format!("duplicate image {p} in permutation"),
            ));
        } else {
            seen[p] = true;
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use smat_diag::DiagnosticsExt;

    #[test]
    fn valid_csr_parts_are_clean() {
        // 2x3: row 0 -> cols {0, 2}, row 1 -> col {1}.
        let d = validate_csr_parts(2, 3, &[0, 2, 3], &[0, 2, 1], 3);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn each_csr_invariant_has_a_code() {
        let bad_len = validate_csr_parts(2, 3, &[0, 1], &[0], 1);
        assert_eq!(bad_len.codes(), vec![DiagCode::RowPtrLength]);

        let bad_start = validate_csr_parts(1, 3, &[1, 1], &[0], 1);
        assert!(bad_start.codes().contains(&DiagCode::RowPtrStart));

        let bad_end = validate_csr_parts(1, 3, &[0, 2], &[0], 1);
        assert!(bad_end.codes().contains(&DiagCode::RowPtrEnd));

        let non_monotone = validate_csr_parts(2, 3, &[0, 2, 1], &[0, 1], 2);
        assert!(non_monotone.codes().contains(&DiagCode::RowPtrNonMonotone));

        let unsorted = validate_csr_parts(1, 3, &[0, 2], &[2, 0], 2);
        assert!(unsorted.codes().contains(&DiagCode::ColIdxUnsorted));

        let oob = validate_csr_parts(1, 2, &[0, 1], &[5], 1);
        assert!(oob.codes().contains(&DiagCode::ColIdxOutOfBounds));

        let arity = validate_csr_parts(1, 2, &[0, 1], &[0], 2);
        assert!(arity.codes().contains(&DiagCode::ArityMismatch));
    }

    #[test]
    fn bcsr_block_dim_and_payload_checks() {
        let zero = validate_bcsr_parts(4, 4, 0, 2, &[0, 0], &[], 0, 0);
        assert_eq!(zero.codes(), vec![DiagCode::BlockDimZero]);

        // 4x4 with 2x2 blocks, one block stored: payload must be 4 values.
        let clean = validate_bcsr_parts(4, 4, 2, 2, &[0, 1, 1], &[0], 4, 3);
        assert!(clean.is_empty(), "{clean:?}");

        let short = validate_bcsr_parts(4, 4, 2, 2, &[0, 1, 1], &[0], 3, 3);
        assert!(short.codes().contains(&DiagCode::ArityMismatch));

        let bad_nnz = validate_bcsr_parts(4, 4, 2, 2, &[0, 1, 1], &[0], 4, 9);
        assert!(bad_nnz.codes().contains(&DiagCode::NnzInconsistent));
    }

    #[test]
    fn permutation_bijectivity() {
        assert!(validate_permutation(&[2, 0, 1]).is_empty());
        let dup = validate_permutation(&[0, 0, 1]);
        assert_eq!(dup.codes(), vec![DiagCode::PermDuplicate]);
        let oob = validate_permutation(&[0, 5, 1]);
        assert_eq!(oob.codes(), vec![DiagCode::PermOutOfRange]);
        assert!(!dup.is_empty() && dup.has_errors());
    }
}
