//! Blocked CSR (BCSR): the internal format of SMaT.
//!
//! The matrix is tiled into fixed `h×w` blocks aligned to multiples of `h`
//! and `w`; only blocks containing at least one nonzero are stored, each as a
//! dense row-major `h·w` slab (zero entries inside a stored block are
//! *padding*). `row_ptr`/`col_idx` mirror CSR at block granularity, so the
//! kernel can iterate exclusively over nonzero blocks (the paper's **B**
//! optimization), and each stored block feeds one MMA fragment directly.

use crate::csr::Csr;
use crate::dense::Dense;
use crate::scalar::Element;

/// Block-sparse matrix in BCSR layout.
#[derive(Clone, Debug, PartialEq)]
pub struct Bcsr<T> {
    nrows: usize,
    ncols: usize,
    block_h: usize,
    block_w: usize,
    /// Offsets into `col_idx` per block row; length `nblock_rows + 1`.
    row_ptr: Vec<usize>,
    /// Block-column index of each stored block.
    col_idx: Vec<usize>,
    /// Dense block payloads, `block_h * block_w` consecutive values each,
    /// row-major within the block.
    values: Vec<T>,
    /// Number of true nonzeros (excluding padding).
    nnz: usize,
}

impl<T: Element> Bcsr<T> {
    /// Converts a CSR matrix into BCSR with the given block shape.
    ///
    /// # Panics
    /// Panics if either block dimension is zero. Use [`Bcsr::try_from_csr`]
    /// for a typed-diagnostic error instead.
    pub fn from_csr(csr: &Csr<T>, block_h: usize, block_w: usize) -> Self {
        match Self::try_from_csr(csr, block_h, block_w) {
            Ok(m) => m,
            Err(diags) => panic!("{}", diags[0].message),
        }
    }

    /// Converts a CSR matrix into BCSR, returning a typed
    /// [`Diagnostic`](smat_diag::Diagnostic) for an invalid block shape
    /// instead of panicking.
    ///
    /// # Errors
    /// Returns [`DiagCode::BlockDimZero`](smat_diag::DiagCode::BlockDimZero)
    /// if either block dimension is zero.
    pub fn try_from_csr(
        csr: &Csr<T>,
        block_h: usize,
        block_w: usize,
    ) -> Result<Self, Vec<smat_diag::Diagnostic>> {
        if block_h == 0 || block_w == 0 {
            return Err(vec![smat_diag::Diagnostic::new(
                smat_diag::DiagCode::BlockDimZero,
                smat_diag::Location::Whole,
                format!("block dimensions must be nonzero, got {block_h}x{block_w}"),
            )]);
        }
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        let nblock_rows = nrows.div_ceil(block_h);
        let nblock_cols = ncols.div_ceil(block_w);

        let mut row_ptr = Vec::with_capacity(nblock_rows + 1);
        row_ptr.push(0usize);
        let mut col_idx: Vec<usize> = Vec::new();
        let mut values: Vec<T> = Vec::new();
        // Scratch: block column -> position in this block row's block list.
        let mut slot_of_bc: Vec<usize> = vec![usize::MAX; nblock_cols];

        for bi in 0..nblock_rows {
            let row_lo = bi * block_h;
            let row_hi = (row_lo + block_h).min(nrows);
            let first_block = col_idx.len();

            // Pass 1: discover the nonzero block columns of this block row,
            // in increasing order (merge of sorted rows via collect+sort of
            // unique block columns).
            for r in row_lo..row_hi {
                for &c in csr.row_cols(r) {
                    let bc = c / block_w;
                    if slot_of_bc[bc] == usize::MAX {
                        slot_of_bc[bc] = 0; // mark present
                        col_idx.push(bc);
                    }
                }
            }
            col_idx[first_block..].sort_unstable();
            for (slot, &bc) in col_idx[first_block..].iter().enumerate() {
                slot_of_bc[bc] = first_block + slot;
            }

            // Pass 2: fill dense payloads.
            let nblocks_here = col_idx.len() - first_block;
            values.resize(values.len() + nblocks_here * block_h * block_w, T::zero());
            for r in row_lo..row_hi {
                let local_r = r - row_lo;
                for (&c, &v) in csr.row_cols(r).iter().zip(csr.row_values(r)) {
                    let bc = c / block_w;
                    let slot = slot_of_bc[bc];
                    let base = slot * block_h * block_w;
                    values[base + local_r * block_w + (c - bc * block_w)] = v;
                }
            }

            // Reset scratch for the next block row.
            for &bc in &col_idx[first_block..] {
                slot_of_bc[bc] = usize::MAX;
            }
            row_ptr.push(col_idx.len());
        }

        Ok(Bcsr {
            nrows,
            ncols,
            block_h,
            block_w,
            row_ptr,
            col_idx,
            values,
            nnz: csr.nnz(),
        })
    }

    /// Parallel variant of [`Bcsr::from_csr`].
    ///
    /// # Panics
    /// Panics if either block dimension is zero. Use
    /// [`Bcsr::try_from_csr_parallel`] for a typed-diagnostic error instead.
    pub fn from_csr_parallel(csr: &Csr<T>, block_h: usize, block_w: usize) -> Self {
        match Self::try_from_csr_parallel(csr, block_h, block_w) {
            Ok(m) => m,
            Err(diags) => panic!("{}", diags[0].message),
        }
    }

    /// Rayon-parallel two-pass CSR→BCSR conversion.
    ///
    /// Pass 1 discovers each block row's sorted nonzero block columns in
    /// parallel; an exclusive scan turns the per-block-row counts into
    /// `row_ptr`; pass 2 fills the dense payloads in parallel, each worker
    /// writing a disjoint `&mut` segment of the preallocated value buffer
    /// (block-column slots are found by binary search in the block row's
    /// sorted column list). The output is bitwise-identical to
    /// [`Bcsr::try_from_csr`] — both store each block row's columns in
    /// increasing order and lay payloads out row-major — which the
    /// conformance smoke gate asserts.
    ///
    /// # Errors
    /// Returns [`DiagCode::BlockDimZero`](smat_diag::DiagCode::BlockDimZero)
    /// if either block dimension is zero.
    pub fn try_from_csr_parallel(
        csr: &Csr<T>,
        block_h: usize,
        block_w: usize,
    ) -> Result<Self, Vec<smat_diag::Diagnostic>> {
        use rayon::prelude::*;

        if block_h == 0 || block_w == 0 {
            return Err(vec![smat_diag::Diagnostic::new(
                smat_diag::DiagCode::BlockDimZero,
                smat_diag::Location::Whole,
                format!("block dimensions must be nonzero, got {block_h}x{block_w}"),
            )]);
        }
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        let nblock_rows = nrows.div_ceil(block_h);

        // Pass 1: per-block-row sorted unique block columns, in parallel.
        let per_row: Vec<Vec<usize>> = (0..nblock_rows)
            .into_par_iter()
            .map(|bi| {
                let row_lo = bi * block_h;
                let row_hi = (row_lo + block_h).min(nrows);
                let mut cols: Vec<usize> = Vec::new();
                for r in row_lo..row_hi {
                    cols.extend(csr.row_cols(r).iter().map(|&c| c / block_w));
                }
                cols.sort_unstable();
                cols.dedup();
                cols
            })
            .collect();

        // Exclusive scan of the counts -> row_ptr; concatenation -> col_idx.
        let mut row_ptr = Vec::with_capacity(nblock_rows + 1);
        row_ptr.push(0usize);
        let mut total = 0usize;
        for cols in &per_row {
            total += cols.len();
            row_ptr.push(total);
        }
        let mut col_idx: Vec<usize> = Vec::with_capacity(total);
        for cols in &per_row {
            col_idx.extend_from_slice(cols);
        }

        // Pass 2: parallel fill into the preallocated payload buffer. Each
        // task owns the disjoint `&mut` value segment of one block row.
        let hw = block_h * block_w;
        let mut values = vec![T::zero(); total * hw];
        let mut tasks: Vec<(usize, &[usize], &mut [T])> = Vec::with_capacity(nblock_rows);
        let mut rest = values.as_mut_slice();
        for (bi, cols) in per_row.iter().enumerate() {
            let (seg, tail) = rest.split_at_mut(cols.len() * hw);
            tasks.push((bi, cols.as_slice(), seg));
            rest = tail;
        }
        tasks.into_par_iter().for_each(|(bi, cols, seg)| {
            let row_lo = bi * block_h;
            let row_hi = (row_lo + block_h).min(nrows);
            for r in row_lo..row_hi {
                let local_r = r - row_lo;
                for (&c, &v) in csr.row_cols(r).iter().zip(csr.row_values(r)) {
                    let bc = c / block_w;
                    let slot = cols.binary_search(&bc).expect("block col from pass 1");
                    seg[slot * hw + local_r * block_w + (c - bc * block_w)] = v;
                }
            }
        });

        Ok(Bcsr {
            nrows,
            ncols,
            block_h,
            block_w,
            row_ptr,
            col_idx,
            values,
            nnz: csr.nnz(),
        })
    }

    /// Assembles a BCSR matrix from raw parts, returning every violated
    /// invariant as a typed [`Diagnostic`](smat_diag::Diagnostic).
    ///
    /// Primarily for tests and tools that need to build (possibly corrupt)
    /// block structures directly; [`Bcsr::from_csr`] is the normal path.
    ///
    /// # Errors
    /// Returns all violations found, in deterministic scan order.
    #[allow(clippy::too_many_arguments)]
    pub fn try_from_raw(
        nrows: usize,
        ncols: usize,
        block_h: usize,
        block_w: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<T>,
        nnz: usize,
    ) -> Result<Self, Vec<smat_diag::Diagnostic>> {
        let diags = crate::validate::validate_bcsr_parts(
            nrows,
            ncols,
            block_h,
            block_w,
            &row_ptr,
            &col_idx,
            values.len(),
            nnz,
        );
        if !diags.is_empty() {
            return Err(diags);
        }
        Ok(Bcsr {
            nrows,
            ncols,
            block_h,
            block_w,
            row_ptr,
            col_idx,
            values,
            nnz,
        })
    }

    /// Number of scalar rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }
    /// Number of scalar columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }
    /// Block height `h`.
    #[inline]
    pub fn block_h(&self) -> usize {
        self.block_h
    }
    /// Block width `w`.
    #[inline]
    pub fn block_w(&self) -> usize {
        self.block_w
    }
    /// Number of block rows, `ceil(nrows / h)`.
    #[inline]
    pub fn nblock_rows(&self) -> usize {
        self.row_ptr.len() - 1
    }
    /// Number of block columns, `ceil(ncols / w)`.
    #[inline]
    pub fn nblock_cols(&self) -> usize {
        self.ncols.div_ceil(self.block_w)
    }
    /// Total number of stored (nonzero) blocks — the paper's `n_e`.
    #[inline]
    pub fn nblocks(&self) -> usize {
        self.col_idx.len()
    }
    /// True nonzeros, excluding padding.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }
    /// Per-block-row offsets into `col_idx`; length `nblock_rows + 1`.
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }
    /// Block-column index of each stored block.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }
    /// Dense block payloads, `h·w` consecutive values per block.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Number of stored blocks in block row `bi`.
    #[inline]
    pub fn blocks_in_row(&self, bi: usize) -> usize {
        self.row_ptr[bi + 1] - self.row_ptr[bi]
    }

    /// Block-column indices of block row `bi`.
    #[inline]
    pub fn row_block_cols(&self, bi: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[bi]..self.row_ptr[bi + 1]]
    }

    /// Dense payload of the `slot`-th stored block (global slot index),
    /// row-major `block_h × block_w`.
    #[inline]
    pub fn block_values(&self, slot: usize) -> &[T] {
        let sz = self.block_h * self.block_w;
        &self.values[slot * sz..(slot + 1) * sz]
    }

    /// Explicitly stored zeros: `nblocks·h·w − nnz`.
    pub fn padding(&self) -> usize {
        self.nblocks() * self.block_h * self.block_w - self.nnz
    }

    /// Average fraction of true nonzeros per stored block, in `(0, 1]`.
    pub fn fill_ratio(&self) -> f64 {
        if self.nblocks() == 0 {
            return 1.0;
        }
        self.nnz as f64 / (self.nblocks() * self.block_h * self.block_w) as f64
    }

    /// The paper's Eq. (2) bounds on the number of elementary computations:
    /// `ceil(nnz/(h·w)) ≤ n_e ≤ min(ceil(N/h)·ceil(M/w), nnz)`.
    pub fn block_count_bounds(&self) -> (usize, usize) {
        let hw = self.block_h * self.block_w;
        let lower = self.nnz.div_ceil(hw);
        let upper = (self.nblock_rows() * self.nblock_cols()).min(self.nnz);
        (lower, upper)
    }

    /// Reconstructs the CSR matrix (drops padding zeros).
    pub fn to_csr(&self) -> Csr<T> {
        let mut coo = crate::coo::Coo::with_capacity(self.nrows, self.ncols, self.nnz);
        for bi in 0..self.nblock_rows() {
            for (k, &bc) in self.row_block_cols(bi).iter().enumerate() {
                let slot = self.row_ptr[bi] + k;
                let vals = self.block_values(slot);
                for lr in 0..self.block_h {
                    let r = bi * self.block_h + lr;
                    if r >= self.nrows {
                        break;
                    }
                    for lc in 0..self.block_w {
                        let c = bc * self.block_w + lc;
                        if c >= self.ncols {
                            break;
                        }
                        let v = vals[lr * self.block_w + lc];
                        if !v.is_zero() {
                            coo.push(r, c, v);
                        }
                    }
                }
            }
        }
        coo.to_csr()
    }

    /// Exact reference block SpMM with f64 accumulation (test oracle for the
    /// simulated kernels; exercises the same block iteration order).
    pub fn spmm_reference(&self, b: &Dense<T>) -> Dense<T> {
        assert_eq!(self.ncols, b.nrows(), "inner dimensions must match");
        let n = b.ncols();
        let mut out64 = vec![0f64; self.nrows * n];
        for bi in 0..self.nblock_rows() {
            for (k, &bc) in self.row_block_cols(bi).iter().enumerate() {
                let slot = self.row_ptr[bi] + k;
                let vals = self.block_values(slot);
                for lr in 0..self.block_h {
                    let r = bi * self.block_h + lr;
                    if r >= self.nrows {
                        break;
                    }
                    for lc in 0..self.block_w {
                        let c = bc * self.block_w + lc;
                        if c >= self.ncols {
                            break;
                        }
                        let a = vals[lr * self.block_w + lc].to_f64();
                        if a == 0.0 {
                            continue;
                        }
                        let brow = b.row(c);
                        let orow = &mut out64[r * n..(r + 1) * n];
                        for (o, &bv) in orow.iter_mut().zip(brow) {
                            *o += a * bv.to_f64();
                        }
                    }
                }
            }
        }
        Dense::from_vec(self.nrows, n, out64.into_iter().map(T::from_f64).collect())
    }

    /// Bytes of payload storage (values only), used by memory-footprint
    /// accounting in the simulator.
    pub fn payload_bytes(&self) -> usize {
        self.values.len() * T::BYTES
    }

    /// Index-structure bytes (row_ptr + col_idx as 4-byte entries, as the
    /// CUDA implementation stores them).
    pub fn index_bytes(&self) -> usize {
        (self.row_ptr.len() + self.col_idx.len()) * 4
    }
}

/// Distribution statistics of blocks per block-row; drives the Fig. 3
/// load-balance analysis and the 2D-schedule imbalance discussion.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct BlockRowStats {
    /// Total stored blocks.
    pub nblocks: usize,
    /// Number of block rows.
    pub nblock_rows: usize,
    /// Mean blocks per block row.
    pub mean: f64,
    /// Standard deviation of blocks per block row.
    pub stddev: f64,
    /// Heaviest block row.
    pub max: usize,
    /// Lightest block row.
    pub min: usize,
}

impl BlockRowStats {
    /// Computes the statistics of a BCSR matrix's block rows.
    pub fn of<T: Element>(bcsr: &Bcsr<T>) -> Self {
        let counts: Vec<usize> = (0..bcsr.nblock_rows())
            .map(|bi| bcsr.blocks_in_row(bi))
            .collect();
        Self::from_counts(&counts)
    }

    /// Computes the statistics from a raw blocks-per-row count vector.
    pub fn from_counts(counts: &[usize]) -> Self {
        let n = counts.len().max(1);
        let total: usize = counts.iter().sum();
        let mean = total as f64 / n as f64;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        BlockRowStats {
            nblocks: total,
            nblock_rows: counts.len(),
            mean,
            stddev: var.sqrt(),
            max: counts.iter().copied().max().unwrap_or(0),
            min: counts.iter().copied().min().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn small_csr() -> Csr<f32> {
        let mut coo = Coo::new(5, 6);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 3.0);
        coo.push(2, 4, 4.0);
        coo.push(4, 5, 5.0);
        coo.to_csr()
    }

    #[test]
    fn block_structure_2x2() {
        let m = small_csr();
        let b = Bcsr::from_csr(&m, 2, 2);
        // Block rows: 0 -> {bc 0}, 1 -> {bc 2}, 2 -> {bc 2}
        assert_eq!(b.nblock_rows(), 3);
        assert_eq!(b.nblock_cols(), 3);
        assert_eq!(b.nblocks(), 3);
        assert_eq!(b.row_block_cols(0), &[0]);
        assert_eq!(b.row_block_cols(1), &[2]);
        assert_eq!(b.row_block_cols(2), &[2]);
        assert_eq!(b.nnz(), 5);
        assert_eq!(b.padding(), 3 * 4 - 5);
    }

    #[test]
    fn block_payload_layout() {
        let m = small_csr();
        let b = Bcsr::from_csr(&m, 2, 2);
        // First block (rows 0..2, cols 0..2): [1 2; 3 0] row-major.
        assert_eq!(b.block_values(0), &[1.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn csr_roundtrip() {
        let m = small_csr();
        for (h, w) in [(1, 1), (2, 2), (2, 3), (4, 4), (16, 8), (7, 5)] {
            let b = Bcsr::from_csr(&m, h, w);
            assert_eq!(b.to_csr(), m, "roundtrip failed for block {h}x{w}");
        }
    }

    #[test]
    fn one_by_one_blocks_equal_csr() {
        let m = small_csr();
        let b = Bcsr::from_csr(&m, 1, 1);
        assert_eq!(b.nblocks(), m.nnz());
        assert_eq!(b.padding(), 0);
        assert_eq!(b.fill_ratio(), 1.0);
    }

    #[test]
    fn eq2_bounds_hold() {
        let m = small_csr();
        for (h, w) in [(1, 1), (2, 2), (3, 3), (16, 8)] {
            let b = Bcsr::from_csr(&m, h, w);
            let (lo, hi) = b.block_count_bounds();
            assert!(
                lo <= b.nblocks() && b.nblocks() <= hi,
                "Eq. (2) violated for {h}x{w}: {lo} <= {} <= {hi}",
                b.nblocks()
            );
        }
    }

    #[test]
    fn spmm_reference_matches_csr_reference() {
        let m = small_csr();
        let rhs = Dense::from_fn(6, 3, |i, j| ((i + 1) * (j + 2)) as f32 * 0.25);
        let want = m.spmm_reference(&rhs);
        for (h, w) in [(2, 2), (2, 3), (16, 8), (4, 1)] {
            let b = Bcsr::from_csr(&m, h, w);
            let got = b.spmm_reference(&rhs);
            assert_eq!(got, want, "mismatch for block {h}x{w}");
        }
    }

    #[test]
    fn ragged_edge_blocks_are_clipped() {
        // 5x6 with 2x4 blocks: last block column is 6..8, clipped at 6.
        let m = small_csr();
        let b = Bcsr::from_csr(&m, 2, 4);
        assert_eq!(b.to_csr(), m);
        assert_eq!(b.nblock_cols(), 2);
    }

    #[test]
    fn stats_mean_and_stddev() {
        let s = BlockRowStats::from_counts(&[2, 4, 6]);
        assert_eq!(s.nblocks, 12);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.stddev - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.max, 6);
        assert_eq!(s.min, 2);
    }

    #[test]
    fn parallel_conversion_is_bitwise_identical() {
        let m = small_csr();
        for (h, w) in [(1, 1), (2, 2), (2, 3), (4, 4), (16, 8), (7, 5)] {
            let seq = Bcsr::from_csr(&m, h, w);
            let par = Bcsr::from_csr_parallel(&m, h, w);
            assert_eq!(seq, par, "parallel != sequential for block {h}x{w}");
        }
        let empty = Csr::<f32>::empty(10, 10);
        assert_eq!(
            Bcsr::from_csr(&empty, 4, 4),
            Bcsr::from_csr_parallel(&empty, 4, 4)
        );
    }

    #[test]
    fn parallel_conversion_rejects_zero_block_dims() {
        let m = small_csr();
        assert!(Bcsr::try_from_csr_parallel(&m, 0, 4).is_err());
        assert!(Bcsr::try_from_csr_parallel(&m, 4, 0).is_err());
    }

    #[test]
    fn empty_matrix() {
        let m = Csr::<f32>::empty(10, 10);
        let b = Bcsr::from_csr(&m, 4, 4);
        assert_eq!(b.nblocks(), 0);
        assert_eq!(b.padding(), 0);
        assert_eq!(b.to_csr(), m);
    }
}
