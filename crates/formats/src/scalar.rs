//! Low-precision scalar types and the [`Element`] trait used by every kernel.
//!
//! Tensor Cores operate on low-precision inputs (FP16, BF16, INT8) and
//! accumulate in a wider type (FP32, INT32). This machine has no hardware
//! half-precision path, so [`F16`] and [`Bf16`] are implemented in software
//! with bit-exact IEEE 754 conversions (round-to-nearest-even), which is what
//! makes the functional Tensor Core simulation in `smat-gpusim` numerically
//! faithful to the PTX `mma` semantics.

use core::fmt;
use core::ops::{Add, Div, Mul, Neg, Sub};

/// Converts an `f32` bit pattern to an IEEE 754 binary16 bit pattern using
/// round-to-nearest-even, matching the hardware `cvt.rn.f16.f32` behaviour.
pub const fn f32_to_f16_bits(x: u32) -> u16 {
    let sign = ((x >> 16) & 0x8000) as u16;
    let exp32 = ((x >> 23) & 0xff) as i32;
    let man32 = x & 0x007f_ffff;
    if exp32 == 0xff {
        if man32 == 0 {
            return sign | 0x7c00; // infinity
        }
        return sign | 0x7e00; // quiet NaN
    }
    let e = exp32 - 127;
    if e >= 16 {
        return sign | 0x7c00; // overflow to infinity
    }
    if e >= -14 {
        // Normal half-precision range.
        let exp16 = (e + 15) as u32;
        let man = man32 >> 13;
        let rest = man32 & 0x1fff;
        let mut h = (sign as u32) | (exp16 << 10) | man;
        if rest > 0x1000 || (rest == 0x1000 && (man & 1) == 1) {
            h += 1; // carry may roll into the exponent, which is correct
        }
        h as u16
    } else if e >= -25 {
        // Subnormal half-precision: unit is 2^-24.
        let full = man32 | 0x0080_0000;
        let shift = ((-14 - e) + 13) as u32;
        let man = full >> shift;
        let rest = full & ((1u32 << shift) - 1);
        let half_point = 1u32 << (shift - 1);
        let mut h = (sign as u32) | man;
        if rest > half_point || (rest == half_point && (man & 1) == 1) {
            h += 1;
        }
        h as u16
    } else {
        sign // underflow to (signed) zero
    }
}

/// Converts an IEEE 754 binary16 bit pattern to the equivalent `f32` bit
/// pattern. The conversion is exact (binary16 ⊂ binary32).
pub const fn f16_bits_to_f32(h: u16) -> u32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & 0x3ff) as u32;
    if exp == 0 {
        if man == 0 {
            return sign;
        }
        // Subnormal: value = man * 2^-24. Normalize into binary32.
        let k = 31 - man.leading_zeros();
        let exp32 = k + 103; // (k - 24) + 127
        let man32 = (man ^ (1 << k)) << (23 - k);
        return sign | (exp32 << 23) | man32;
    }
    if exp == 0x1f {
        return sign | 0x7f80_0000 | (man << 13);
    }
    sign | ((exp + 112) << 23) | (man << 13)
}

/// Converts an `f32` bit pattern to bfloat16 with round-to-nearest-even.
pub const fn f32_to_bf16_bits(x: u32) -> u16 {
    if (x & 0x7fff_ffff) > 0x7f80_0000 {
        // NaN: keep it a NaN after truncation.
        return ((x >> 16) as u16) | 0x0040;
    }
    let rest = x & 0xffff;
    let mut h = x >> 16;
    if rest > 0x8000 || (rest == 0x8000 && (h & 1) == 1) {
        h += 1;
    }
    h as u16
}

/// Half-precision IEEE 754 binary16 value stored as raw bits.
#[derive(Copy, Clone, Default)]
#[repr(transparent)]
pub struct F16(pub u16);

/// bfloat16 value stored as raw bits (the high 16 bits of an `f32`).
#[derive(Copy, Clone, Default)]
#[repr(transparent)]
pub struct Bf16(pub u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// The value 1.0.
    pub const ONE: F16 = F16(0x3c00);
    /// Largest finite binary16 value, 65504.
    pub const MAX: F16 = F16(0x7bff);
    /// Machine epsilon of binary16, 2^-10.
    pub const EPSILON: F16 = F16(0x1400);

    /// Rounds an `f32` to the nearest binary16 (ties to even).
    #[inline]
    pub fn from_f32(v: f32) -> F16 {
        F16(f32_to_f16_bits(v.to_bits()))
    }
    /// Exact widening conversion to `f32`.
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits(f16_bits_to_f32(self.0))
    }
    /// Reinterprets raw binary16 bits.
    #[inline]
    pub fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }
    /// The raw binary16 bit pattern.
    #[inline]
    pub fn to_bits(self) -> u16 {
        self.0
    }
    /// Whether the value is a NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7fff) > 0x7c00
    }
    /// Whether the value is ±infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7fff) == 0x7c00
    }
    /// Whether the value is neither NaN nor infinite.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7c00) != 0x7c00
    }
}

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// The value 1.0.
    pub const ONE: Bf16 = Bf16(0x3f80);

    /// Rounds an `f32` to the nearest bfloat16 (ties to even).
    #[inline]
    pub fn from_f32(v: f32) -> Bf16 {
        Bf16(f32_to_bf16_bits(v.to_bits()))
    }
    /// Exact widening conversion to `f32`.
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }
    /// Reinterprets raw bfloat16 bits.
    #[inline]
    pub fn from_bits(bits: u16) -> Bf16 {
        Bf16(bits)
    }
    /// The raw bfloat16 bit pattern.
    #[inline]
    pub fn to_bits(self) -> u16 {
        self.0
    }
    /// Whether the value is a NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.to_f32().is_nan()
    }
}

macro_rules! float_like_ops {
    ($t:ty) => {
        impl Add for $t {
            type Output = $t;
            #[inline]
            fn add(self, rhs: $t) -> $t {
                <$t>::from_f32(self.to_f32() + rhs.to_f32())
            }
        }
        impl Sub for $t {
            type Output = $t;
            #[inline]
            fn sub(self, rhs: $t) -> $t {
                <$t>::from_f32(self.to_f32() - rhs.to_f32())
            }
        }
        impl Mul for $t {
            type Output = $t;
            #[inline]
            fn mul(self, rhs: $t) -> $t {
                <$t>::from_f32(self.to_f32() * rhs.to_f32())
            }
        }
        impl Div for $t {
            type Output = $t;
            #[inline]
            fn div(self, rhs: $t) -> $t {
                <$t>::from_f32(self.to_f32() / rhs.to_f32())
            }
        }
        impl Neg for $t {
            type Output = $t;
            #[inline]
            fn neg(self) -> $t {
                <$t>::from_bits(self.to_bits() ^ 0x8000)
            }
        }
        impl PartialEq for $t {
            /// IEEE float equality: `-0 == +0`, `NaN != NaN` (compare
            /// [`Self::to_bits`] for representation identity).
            #[inline]
            fn eq(&self, other: &$t) -> bool {
                self.to_f32() == other.to_f32()
            }
        }
        impl PartialOrd for $t {
            #[inline]
            fn partial_cmp(&self, other: &$t) -> Option<core::cmp::Ordering> {
                self.to_f32().partial_cmp(&other.to_f32())
            }
        }
        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.to_f32())
            }
        }
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.to_f32())
            }
        }
        impl From<f32> for $t {
            #[inline]
            fn from(v: f32) -> $t {
                <$t>::from_f32(v)
            }
        }
        impl From<$t> for f32 {
            #[inline]
            fn from(v: $t) -> f32 {
                v.to_f32()
            }
        }
    };
}

float_like_ops!(F16);
float_like_ops!(Bf16);

/// An element type usable as matrix storage in every kernel of this
/// workspace, together with its Tensor Core accumulator type.
///
/// The `mul_acc` contract mirrors the MMA unit: products and the running sum
/// along the K dimension are computed in the accumulator precision, and the
/// result is only rounded back to `Self` when the fragment is stored.
pub trait Element: Copy + Clone + Send + Sync + PartialEq + fmt::Debug + Default + 'static {
    /// Accumulator type of the MMA unit for this input type.
    type Accum: Copy + Clone + Send + Sync + PartialEq + fmt::Debug + Default + 'static;

    /// Name used in experiment records ("f16", "bf16", "f32", "i8").
    const NAME: &'static str;
    /// Storage size in bytes, used by the memory-traffic cost model.
    const BYTES: usize;

    /// The additive identity.
    fn zero() -> Self;
    /// Whether the value is (positive or negative) zero.
    fn is_zero(&self) -> bool;
    /// Lossy conversion from `f64`; generators produce values representable
    /// exactly in every supported precision to keep tests exact.
    fn from_f64(v: f64) -> Self;
    /// Exact widening conversion to `f64`.
    fn to_f64(self) -> f64;

    /// The accumulator additive identity.
    fn accum_zero() -> Self::Accum;
    /// One fused multiply-add step in accumulator precision.
    fn mul_acc(acc: Self::Accum, a: Self, b: Self) -> Self::Accum;
    /// Adds two accumulator values in accumulator precision (the hardware
    /// cross-fragment combine, e.g. atomics merging partial sums).
    fn accum_add(a: Self::Accum, b: Self::Accum) -> Self::Accum;
    /// Exact widening conversion of an accumulator to `f64`.
    fn accum_to_f64(acc: Self::Accum) -> f64;
    /// Round an accumulator back to the storage type (fragment store).
    fn from_accum(acc: Self::Accum) -> Self;
}

impl Element for f32 {
    type Accum = f32;
    const NAME: &'static str = "f32";
    const BYTES: usize = 4;

    fn zero() -> Self {
        0.0
    }
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn accum_zero() -> f32 {
        0.0
    }
    #[inline]
    fn mul_acc(acc: f32, a: f32, b: f32) -> f32 {
        acc + a * b
    }
    #[inline]
    fn accum_add(a: f32, b: f32) -> f32 {
        a + b
    }
    fn accum_to_f64(acc: f32) -> f64 {
        acc as f64
    }
    fn from_accum(acc: f32) -> f32 {
        acc
    }
}

impl Element for F16 {
    type Accum = f32;
    const NAME: &'static str = "f16";
    const BYTES: usize = 2;

    fn zero() -> Self {
        F16::ZERO
    }
    fn is_zero(&self) -> bool {
        (self.0 & 0x7fff) == 0
    }
    fn from_f64(v: f64) -> Self {
        F16::from_f32(v as f32)
    }
    fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }
    fn accum_zero() -> f32 {
        0.0
    }
    #[inline]
    fn mul_acc(acc: f32, a: F16, b: F16) -> f32 {
        acc + a.to_f32() * b.to_f32()
    }
    #[inline]
    fn accum_add(a: f32, b: f32) -> f32 {
        a + b
    }
    fn accum_to_f64(acc: f32) -> f64 {
        acc as f64
    }
    fn from_accum(acc: f32) -> F16 {
        F16::from_f32(acc)
    }
}

impl Element for Bf16 {
    type Accum = f32;
    const NAME: &'static str = "bf16";
    const BYTES: usize = 2;

    fn zero() -> Self {
        Bf16::ZERO
    }
    fn is_zero(&self) -> bool {
        (self.0 & 0x7fff) == 0
    }
    fn from_f64(v: f64) -> Self {
        Bf16::from_f32(v as f32)
    }
    fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }
    fn accum_zero() -> f32 {
        0.0
    }
    #[inline]
    fn mul_acc(acc: f32, a: Bf16, b: Bf16) -> f32 {
        acc + a.to_f32() * b.to_f32()
    }
    #[inline]
    fn accum_add(a: f32, b: f32) -> f32 {
        a + b
    }
    fn accum_to_f64(acc: f32) -> f64 {
        acc as f64
    }
    fn from_accum(acc: f32) -> Bf16 {
        Bf16::from_f32(acc)
    }
}

impl Element for i8 {
    type Accum = i32;
    const NAME: &'static str = "i8";
    const BYTES: usize = 1;

    fn zero() -> Self {
        0
    }
    fn is_zero(&self) -> bool {
        *self == 0
    }
    fn from_f64(v: f64) -> Self {
        v.clamp(i8::MIN as f64, i8::MAX as f64) as i8
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn accum_zero() -> i32 {
        0
    }
    #[inline]
    fn mul_acc(acc: i32, a: i8, b: i8) -> i32 {
        acc.wrapping_add((a as i32) * (b as i32))
    }
    #[inline]
    fn accum_add(a: i32, b: i32) -> i32 {
        a.wrapping_add(b)
    }
    fn accum_to_f64(acc: i32) -> f64 {
        acc as f64
    }
    fn from_accum(acc: i32) -> i8 {
        acc.clamp(i8::MIN as i32, i8::MAX as i32) as i8
    }
}

/// INT16 element as used by Magicube's mixed-precision int16 path.
impl Element for i16 {
    type Accum = i32;
    const NAME: &'static str = "i16";
    const BYTES: usize = 2;

    fn zero() -> Self {
        0
    }
    fn is_zero(&self) -> bool {
        *self == 0
    }
    fn from_f64(v: f64) -> Self {
        v.clamp(i16::MIN as f64, i16::MAX as f64) as i16
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn accum_zero() -> i32 {
        0
    }
    #[inline]
    fn mul_acc(acc: i32, a: i16, b: i16) -> i32 {
        acc.wrapping_add((a as i32) * (b as i32))
    }
    #[inline]
    fn accum_add(a: i32, b: i32) -> i32 {
        a.wrapping_add(b)
    }
    fn accum_to_f64(acc: i32) -> f64 {
        acc as f64
    }
    fn from_accum(acc: i32) -> i16 {
        acc.clamp(i16::MIN as i32, i16::MAX as i32) as i16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrip_exact_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.333_251_95] {
            let h = F16::from_f32(v);
            assert_eq!(h.to_f32(), v, "value {v} should be exactly representable");
        }
    }

    #[test]
    fn f16_one_has_canonical_bits() {
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3c00);
        assert_eq!(F16::ONE.to_f32(), 1.0);
    }

    #[test]
    fn f16_overflow_to_infinity() {
        assert!(F16::from_f32(1.0e6).is_infinite());
        assert!(F16::from_f32(-1.0e6).is_infinite());
        assert_eq!(F16::from_f32(1.0e6).to_f32(), f32::INFINITY);
    }

    #[test]
    fn f16_underflow_to_zero() {
        let tiny = F16::from_f32(1.0e-10);
        assert!(tiny.is_zero());
        let neg_tiny = F16::from_f32(-1.0e-10);
        assert_eq!(neg_tiny.to_bits(), 0x8000, "sign of zero is preserved");
    }

    #[test]
    fn f16_subnormals() {
        // Smallest positive subnormal is 2^-24.
        let s = F16::from_f32(2.0f32.powi(-24));
        assert_eq!(s.to_bits(), 0x0001);
        assert_eq!(s.to_f32(), 2.0f32.powi(-24));
        // Largest subnormal: (1023/1024) * 2^-14.
        let l = F16::from_bits(0x03ff);
        assert_eq!(l.to_f32(), 1023.0 / 1024.0 * 2.0f32.powi(-14));
    }

    #[test]
    fn f16_round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1 and 1+2^-10: rounds to even (1).
        let v = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(v).to_bits(), 0x3c00);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: rounds to even (1+2^-9).
        let v = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(v).to_bits(), 0x3c02);
        // Just above halfway must round up.
        let v = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(v).to_bits(), 0x3c01);
    }

    #[test]
    fn f16_nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn f16_arithmetic_rounds() {
        // 2048 + 1 is not representable in binary16 (needs 12 mantissa bits);
        // RNE keeps it at 2048.
        let a = F16::from_f32(2048.0);
        let b = F16::from_f32(1.0);
        assert_eq!((a + b).to_f32(), 2048.0);
        // 2048 + 2 is representable.
        let c = F16::from_f32(2.0);
        assert_eq!((a + c).to_f32(), 2050.0);
    }

    #[test]
    fn f16_neg_flips_sign_bit_only() {
        let a = F16::from_f32(1.5);
        assert_eq!((-a).to_f32(), -1.5);
        assert_eq!((-(-a)).to_bits(), a.to_bits());
    }

    #[test]
    fn bf16_roundtrip_and_rounding() {
        assert_eq!(Bf16::from_f32(1.0).to_bits(), 0x3f80);
        assert_eq!(Bf16::from_f32(1.0).to_f32(), 1.0);
        // The ulp of 1.0 in bf16 is 2^-7, so 1 + 2^-8 is exactly halfway
        // between 1 and the next value: ties-to-even keeps the even (1.0).
        let v = 1.0 + 2.0f32.powi(-8);
        assert_eq!(Bf16::from_f32(v).to_bits(), 0x3f80, "ties to even");
        // Just above halfway rounds up.
        let v = 1.0 + 2.0f32.powi(-8) + 2.0f32.powi(-16);
        assert_eq!(Bf16::from_f32(v).to_bits(), 0x3f81);
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        // bf16 keeps f32's range: 1e38 stays finite.
        assert!(Bf16::from_f32(1.0e38).to_f32().is_finite());
    }

    #[test]
    fn element_trait_i8_saturates_on_store() {
        let acc = i8::mul_acc(0, 100, 100);
        assert_eq!(acc, 10_000);
        assert_eq!(<i8 as Element>::from_accum(acc), 127);
        assert_eq!(<i8 as Element>::from_accum(-10_000), -128);
    }

    #[test]
    fn element_trait_roundtrips_small_integers() {
        // Small integers are exact in every precision, which is what the
        // workload generators rely on for exact cross-kernel comparisons.
        for v in -32..=32 {
            let v = v as f64 * 0.5;
            assert_eq!(F16::from_f64(v).to_f64(), v);
            assert_eq!(Bf16::from_f64(v).to_f64(), v);
            assert_eq!(<f32 as Element>::from_f64(v).to_f64(), v);
        }
    }
}
