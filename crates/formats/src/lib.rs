//! # smat-formats
//!
//! Sparse and dense matrix formats for the SMaT (SC'24) reproduction:
//!
//! * [`Coo`] — coordinate triplets, the ingestion format;
//! * [`Csr`]/[`Csc`] — compressed sparse row/column, the unstructured
//!   baseline formats (§II-B1 of the paper);
//! * [`Bcsr`] — blocked CSR, SMaT's internal format whose block shape
//!   matches the Tensor Core MMA fragment (§IV-B);
//! * [`SrBcrs`] — Magicube's strided row-major blocked CRS (§IV-B);
//! * [`Ell`] — ELLPACK, the classic padded GPU SpMV layout;
//! * [`Dense`] — row-major dense matrices for `B`, `C`, and references;
//! * [`F16`]/[`Bf16`] — software half-precision scalars with bit-exact IEEE
//!   rounding, plus the [`Element`] trait unifying all Tensor-Core-supported
//!   input types;
//! * [`mtx`] — Matrix Market I/O.

#![forbid(unsafe_code)]

pub mod bcsr;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod ell;
pub mod fingerprint;
pub mod mtx;
pub mod permutation;
pub mod scalar;
pub mod srbcrs;
pub mod validate;

pub use bcsr::{Bcsr, BlockRowStats};
pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use dense::Dense;
pub use ell::Ell;
pub use fingerprint::{Fnv1a, MatrixFingerprint};
pub use permutation::Permutation;
pub use scalar::{Bf16, Element, F16};
pub use srbcrs::SrBcrs;
