//! Compressed Sparse Row (CSR): the ingestion format of SMaT and the storage
//! format of the cuSPARSE and DASP baselines.

use crate::coo::Coo;
use crate::dense::Dense;
use crate::permutation::Permutation;
use crate::scalar::Element;

/// CSR sparse matrix with sorted column indices within each row.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr<T> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Element> Csr<T> {
    /// Builds from raw arrays, validating the CSR invariants:
    /// monotone `row_ptr`, in-range and strictly increasing column indices
    /// per row, and matching array lengths.
    ///
    /// # Panics
    /// Panics if any invariant is violated. Use [`Csr::try_from_raw`] for a
    /// typed-diagnostic error instead.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<T>,
    ) -> Self {
        match Self::try_from_raw(nrows, ncols, row_ptr, col_idx, values) {
            Ok(m) => m,
            Err(diags) => panic!("{}", diags[0].message),
        }
    }

    /// Builds from raw arrays, returning every violated CSR invariant as a
    /// typed [`Diagnostic`](smat_diag::Diagnostic) instead of panicking.
    ///
    /// # Errors
    /// Returns all violations found, in deterministic scan order; the vector
    /// is non-empty whenever this returns `Err`.
    pub fn try_from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self, Vec<smat_diag::Diagnostic>> {
        let diags =
            crate::validate::validate_csr_parts(nrows, ncols, &row_ptr, &col_idx, values.len());
        if !diags.is_empty() {
            return Err(diags);
        }
        Ok(Csr {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Empty matrix with no nonzeros.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Csr {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds from a dense matrix, dropping zeros.
    pub fn from_dense(dense: &Dense<T>) -> Self {
        let mut coo = Coo::with_capacity(dense.nrows(), dense.ncols(), dense.nrows());
        for i in 0..dense.nrows() {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if !v.is_zero() {
                    coo.push(i, j, v);
                }
            }
        }
        coo.to_csr()
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }
    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }
    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }
    /// Per-row offsets into `col_idx`; length `nrows + 1`.
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }
    /// Column index of each stored nonzero, sorted within each row.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }
    /// Value of each stored nonzero, parallel to `col_idx`.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Fraction of zero entries, `1 - nnz/(nrows*ncols)`.
    pub fn sparsity(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            return 1.0;
        }
        1.0 - self.nnz() as f64 / (self.nrows as f64 * self.ncols as f64)
    }

    /// Column indices of row `i`.
    #[inline]
    pub fn row_cols(&self, i: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Values of row `i`.
    #[inline]
    pub fn row_values(&self, i: usize) -> &[T] {
        &self.values[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Number of nonzeros in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Value at `(i, j)` if stored.
    pub fn get(&self, i: usize, j: usize) -> Option<T> {
        let cols = self.row_cols(i);
        cols.binary_search(&j)
            .ok()
            .map(|k| self.values[self.row_ptr[i] + k])
    }

    /// Iterates `(row, col, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            self.row_cols(i)
                .iter()
                .zip(self.row_values(i))
                .map(move |(&c, &v)| (i, c, v))
        })
    }

    /// Converts to a canonical COO triplet list.
    pub fn to_coo(&self) -> Coo<T> {
        Coo::from_entries(self.nrows, self.ncols, self.iter().collect())
    }

    /// Converts to a dense matrix (zeros filled in).
    pub fn to_dense(&self) -> Dense<T> {
        let mut out = Dense::zeros(self.nrows, self.ncols);
        for (i, j, v) in self.iter() {
            out.set(i, j, v);
        }
        out
    }

    /// Transposed copy (also serves as CSR→CSC conversion).
    pub fn transpose(&self) -> Csr<T> {
        let mut row_ptr = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for i in 0..self.ncols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![T::zero(); self.nnz()];
        for (i, j, v) in self.iter() {
            let dst = cursor[j];
            col_idx[dst] = i;
            values[dst] = v;
            cursor[j] += 1;
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Row-permuted copy: row `i` of the result is row `perm.source_of(i)`
    /// of `self` (`A' = P·A`).
    pub fn permute_rows(&self, perm: &Permutation) -> Csr<T> {
        assert_eq!(
            perm.len(),
            self.nrows,
            "permutation length must match nrows"
        );
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            let src = perm.source_of(i);
            col_idx.extend_from_slice(self.row_cols(src));
            values.extend_from_slice(self.row_values(src));
            row_ptr.push(col_idx.len());
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Column-permuted copy: column `j` of the result is column
    /// `perm.source_of(j)` of `self` (`A' = A·Pᵀ`).
    pub fn permute_cols(&self, perm: &Permutation) -> Csr<T> {
        assert_eq!(
            perm.len(),
            self.ncols,
            "permutation length must match ncols"
        );
        // destination[old column] = new column
        let inv = perm.inverse();
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        let mut scratch: Vec<(usize, T)> = Vec::new();
        for i in 0..self.nrows {
            scratch.clear();
            scratch.extend(
                self.row_cols(i)
                    .iter()
                    .zip(self.row_values(i))
                    .map(|(&c, &v)| (inv.source_of(c), v)),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Exact reference SpMM `C = A·B` with f64 accumulation; the oracle every
    /// kernel in the workspace is tested against.
    pub fn spmm_reference(&self, b: &Dense<T>) -> Dense<T> {
        assert_eq!(
            self.ncols,
            b.nrows(),
            "inner dimensions must match: A is {}x{}, B is {}x{}",
            self.nrows,
            self.ncols,
            b.nrows(),
            b.ncols()
        );
        let n = b.ncols();
        let mut acc = vec![0f64; n];
        let mut out = Dense::zeros(self.nrows, n);
        for i in 0..self.nrows {
            acc.iter_mut().for_each(|a| *a = 0.0);
            for (&k, &v) in self.row_cols(i).iter().zip(self.row_values(i)) {
                let v = v.to_f64();
                let brow = b.row(k);
                for (a, &bv) in acc.iter_mut().zip(brow) {
                    *a += v * bv.to_f64();
                }
            }
            let row = out.row_mut(i);
            for (o, &a) in row.iter_mut().zip(acc.iter()) {
                *o = T::from_f64(a);
            }
        }
        out
    }

    /// Converts element type (through `f64`).
    pub fn cast<U: Element>(&self) -> Csr<U> {
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self
                .values
                .iter()
                .map(|v| U::from_f64(v.to_f64()))
                .collect(),
        }
    }

    /// Per-row nonzero counts (used by load-balance statistics).
    pub fn row_nnz_histogram(&self) -> Vec<usize> {
        (0..self.nrows).map(|i| self.row_nnz(i)).collect()
    }

    /// Copies the row range `[start, end)` into a standalone CSR matrix
    /// with the same column space.
    ///
    /// This is the row-range view the 1D shard partitioner cuts on: each
    /// shard keeps every nonzero of the rows it owns, so `A·B` restricted
    /// to those rows equals the slice's product with the same `B` — the
    /// sharded join is a pure row concatenation.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > nrows`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Csr<T> {
        assert!(
            start <= end && end <= self.nrows,
            "row slice [{start}, {end}) out of bounds for {} rows",
            self.nrows
        );
        let base = self.row_ptr[start];
        let stop = self.row_ptr[end];
        Csr {
            nrows: end - start,
            ncols: self.ncols,
            row_ptr: self.row_ptr[start..=end].iter().map(|p| p - base).collect(),
            col_idx: self.col_idx[base..stop].to_vec(),
            values: self.values[base..stop].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f32> {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        Csr::from_raw(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
    }

    #[test]
    fn accessors() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.get(2, 1), Some(4.0));
        assert_eq!(m.get(1, 1), None);
        assert!((m.sparsity() - (1.0 - 4.0 / 9.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_raw_rejects_unsorted_columns() {
        let _ = Csr::<f32>::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_raw_rejects_out_of_range_column() {
        let _ = Csr::<f32>::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d.get(0, 2), 2.0);
        assert_eq!(Csr::from_dense(&d), m);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 0), Some(2.0));
    }

    #[test]
    fn permute_rows_moves_rows() {
        let m = sample();
        let p = Permutation::from_vec(vec![2, 0, 1]);
        let pm = m.permute_rows(&p);
        assert_eq!(pm.row_cols(0), m.row_cols(2));
        assert_eq!(pm.row_values(0), m.row_values(2));
        assert_eq!(pm.row_nnz(2), 0);
    }

    #[test]
    fn permute_rows_then_inverse_restores() {
        let m = sample();
        let p = Permutation::from_vec(vec![1, 2, 0]);
        let restored = m.permute_rows(&p).permute_rows(&p.inverse());
        assert_eq!(restored, m);
    }

    #[test]
    fn permute_cols_keeps_sorted_invariant() {
        let m = sample();
        let p = Permutation::from_vec(vec![2, 1, 0]);
        let pm = m.permute_cols(&p);
        // Column 0 of pm is old column 2.
        assert_eq!(pm.get(0, 0), Some(2.0));
        assert_eq!(pm.get(0, 2), Some(1.0));
        for i in 0..3 {
            let cols = pm.row_cols(i);
            assert!(cols.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn spmm_reference_against_hand_computed() {
        let m = sample();
        let b = Dense::from_fn(3, 2, |i, j| (i * 2 + j + 1) as f32);
        // B = [1 2; 3 4; 5 6]
        let c = m.spmm_reference(&b);
        assert_eq!(c.get(0, 0), 1.0 * 1.0 + 2.0 * 5.0);
        assert_eq!(c.get(0, 1), 1.0 * 2.0 + 2.0 * 6.0);
        assert_eq!(c.get(1, 0), 0.0);
        assert_eq!(c.get(2, 0), 3.0 * 1.0 + 4.0 * 3.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn spmm_reference_checks_dims() {
        let m = sample();
        let b = Dense::<f32>::zeros(2, 2);
        let _ = m.spmm_reference(&b);
    }

    #[test]
    fn slice_rows_matches_row_ranges() {
        let m = sample();
        let top = m.slice_rows(0, 2);
        assert_eq!(top.nrows(), 2);
        assert_eq!(top.ncols(), 3);
        assert_eq!(top.nnz(), 2);
        assert_eq!(top.row_cols(0), m.row_cols(0));
        assert_eq!(top.row_values(0), m.row_values(0));
        assert_eq!(top.row_nnz(1), 0);
        let bottom = m.slice_rows(2, 3);
        assert_eq!(bottom.row_cols(0), m.row_cols(2));
        assert_eq!(bottom.row_values(0), m.row_values(2));
        let empty = m.slice_rows(1, 1);
        assert_eq!(empty.nrows(), 0);
        assert_eq!(empty.nnz(), 0);
    }

    #[test]
    fn slice_rows_product_matches_full_product_rows() {
        let m = sample();
        let b = Dense::from_fn(3, 2, |i, j| (i * 2 + j + 1) as f32);
        let full = m.spmm_reference(&b);
        let part = m.slice_rows(1, 3).spmm_reference(&b);
        assert_eq!(part.row(0), full.row(1));
        assert_eq!(part.row(1), full.row(2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_rows_validates_bounds() {
        let _ = sample().slice_rows(1, 4);
    }

    #[test]
    fn row_permutation_commutes_with_spmm() {
        // (P A) B == P (A B): the algebraic fact SMaT's preprocessing relies on.
        let m = sample();
        let b = Dense::from_fn(3, 2, |i, j| (i + j) as f32);
        let p = Permutation::from_vec(vec![2, 0, 1]);
        let lhs = m.permute_rows(&p).spmm_reference(&b);
        let rhs = m.spmm_reference(&b).select_rows(p.as_slice());
        assert_eq!(lhs, rhs);
    }
}
