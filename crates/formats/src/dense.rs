//! Dense row-major matrix used for the right-hand side `B`, the output `C`,
//! and as the exact reference in tests.

use crate::scalar::Element;

use rayon::prelude::*;

/// Element count below which row packing stays sequential: copying a few
/// kilobytes is faster than fanning rows out to worker threads.
const PAR_PACK_THRESHOLD: usize = 1 << 16;

/// Splits a row-major buffer into one `(row, &mut row_data)` task per row.
fn row_tasks<T>(data: &mut [T], ncols: usize) -> Vec<(usize, &mut [T])> {
    let mut tasks = Vec::with_capacity(data.len().checked_div(ncols).unwrap_or(0));
    let mut rest = data;
    let mut i = 0;
    while rest.len() >= ncols && !rest.is_empty() {
        let (row, tail) = rest.split_at_mut(ncols);
        tasks.push((i, row));
        rest = tail;
        i += 1;
    }
    tasks
}

/// Dense matrix in row-major layout.
///
/// Row-major matches how the SMaT kernel streams rows of `B` into shared
/// memory: the `N` columns of one K-row form one contiguous, coalesced line.
#[derive(Clone, Debug, PartialEq)]
pub struct Dense<T> {
    nrows: usize,
    ncols: usize,
    data: Vec<T>,
}

impl<T: Element> Dense<T> {
    /// All-zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Dense {
            nrows,
            ncols,
            data: vec![T::zero(); nrows * ncols],
        }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "dense data length {} does not match shape {}x{}",
            data.len(),
            nrows,
            ncols
        );
        Dense { nrows, ncols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                data.push(f(i, j));
            }
        }
        Dense { nrows, ncols, data }
    }

    /// Identity-like matrix (ones on the main diagonal).
    pub fn eye(n: usize) -> Self {
        Self::from_fn(
            n,
            n,
            |i, j| {
                if i == j {
                    T::from_f64(1.0)
                } else {
                    T::zero()
                }
            },
        )
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }
    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }
    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Value at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[i * self.ncols + j]
    }

    /// Stores `v` at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[i * self.ncols + j] = v;
    }

    /// One row as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// One row as a mutable contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable row-major backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Number of explicitly stored zero entries.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|v| v.is_zero()).count()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Dense<T> {
        Dense::from_fn(self.ncols, self.nrows, |i, j| self.get(j, i))
    }

    /// Returns a copy with rows permuted: `out[i] = self[perm[i]]`.
    ///
    /// Large outputs (≥ 64Ki elements) are gathered row-parallel under
    /// rayon; the result is identical to the sequential copy.
    pub fn select_rows(&self, perm: &[usize]) -> Dense<T> {
        let mut out = Dense::zeros(perm.len(), self.ncols);
        if out.data.len() < PAR_PACK_THRESHOLD || self.ncols == 0 {
            for (dst, &src) in perm.iter().enumerate() {
                out.row_mut(dst).copy_from_slice(self.row(src));
            }
        } else {
            row_tasks(&mut out.data, self.ncols)
                .into_par_iter()
                .for_each(|(dst, row)| row.copy_from_slice(self.row(perm[dst])));
        }
        out
    }

    /// Maximum absolute element-wise difference against another matrix,
    /// computed in f64. Used by accuracy tests.
    pub fn max_abs_diff(&self, other: &Dense<T>) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// Horizontally concatenates panels that share a row count:
    /// `hconcat([B1, B2, B3])` is `[B1 | B2 | B3]`.
    ///
    /// This is how the serving batcher coalesces same-matrix requests: the
    /// kernel sees one wide right-hand side and [`Dense::split_cols`] hands
    /// each request its own slice of the output back.
    ///
    /// Large outputs (≥ 64Ki elements) are packed row-parallel under rayon;
    /// the result is identical to the sequential copy.
    ///
    /// # Panics
    /// Panics if `parts` is empty or the row counts disagree.
    pub fn hconcat(parts: &[&Dense<T>]) -> Dense<T> {
        assert!(!parts.is_empty(), "hconcat of zero panels");
        let nrows = parts[0].nrows;
        let ncols: usize = parts
            .iter()
            .map(|p| {
                assert_eq!(p.nrows, nrows, "hconcat panels must share row count");
                p.ncols
            })
            .sum();
        let mut out = Dense::zeros(nrows, ncols);
        let pack_row = |i: usize, row: &mut [T]| {
            let mut at = 0;
            for p in parts {
                row[at..at + p.ncols].copy_from_slice(p.row(i));
                at += p.ncols;
            }
        };
        if out.data.len() < PAR_PACK_THRESHOLD || ncols == 0 {
            for i in 0..nrows {
                pack_row(i, out.row_mut(i));
            }
        } else {
            row_tasks(&mut out.data, ncols)
                .into_par_iter()
                .for_each(|(i, row)| pack_row(i, row));
        }
        out
    }

    /// Splits the matrix into column panels of the given widths — the
    /// inverse of [`Dense::hconcat`]: `split_cols(&[w1, w2])` returns the
    /// first `w1` columns and the next `w2` columns as separate matrices.
    ///
    /// # Panics
    /// Panics if the widths do not sum to `ncols`.
    pub fn split_cols(&self, widths: &[usize]) -> Vec<Dense<T>> {
        assert_eq!(
            widths.iter().sum::<usize>(),
            self.ncols,
            "split widths must sum to the column count {}",
            self.ncols
        );
        let mut out = Vec::with_capacity(widths.len());
        let mut at = 0;
        for &w in widths {
            let mut panel = Dense::zeros(self.nrows, w);
            for i in 0..self.nrows {
                panel.row_mut(i).copy_from_slice(&self.row(i)[at..at + w]);
            }
            at += w;
            out.push(panel);
        }
        out
    }

    /// Vertically concatenates panels that share a column count:
    /// `vconcat([C1, C2, C3])` stacks the panels top to bottom.
    ///
    /// This is how the sharded executor joins partial results: each shard
    /// computes the rows it owns and the join is a pure row-major buffer
    /// append, so the concatenation is bitwise — no arithmetic happens.
    ///
    /// # Panics
    /// Panics if `parts` is empty or the column counts disagree.
    pub fn vconcat(parts: &[&Dense<T>]) -> Dense<T> {
        assert!(!parts.is_empty(), "vconcat of zero panels");
        let ncols = parts[0].ncols;
        let mut nrows = 0;
        let mut data = Vec::with_capacity(parts.iter().map(|p| p.data.len()).sum());
        for p in parts {
            assert_eq!(p.ncols, ncols, "vconcat panels must share column count");
            nrows += p.nrows;
            data.extend_from_slice(&p.data);
        }
        Dense { nrows, ncols, data }
    }

    /// Splits the matrix into row panels of the given heights — the inverse
    /// of [`Dense::vconcat`]: `split_rows(&[h1, h2])` returns the first `h1`
    /// rows and the next `h2` rows as separate matrices.
    ///
    /// # Panics
    /// Panics if the heights do not sum to `nrows`.
    pub fn split_rows(&self, heights: &[usize]) -> Vec<Dense<T>> {
        assert_eq!(
            heights.iter().sum::<usize>(),
            self.nrows,
            "split heights must sum to the row count {}",
            self.nrows
        );
        let mut out = Vec::with_capacity(heights.len());
        let mut at = 0;
        for &h in heights {
            let data = self.data[at * self.ncols..(at + h) * self.ncols].to_vec();
            out.push(Dense {
                nrows: h,
                ncols: self.ncols,
                data,
            });
            at += h;
        }
        out
    }

    /// Converts element type (through `f64`).
    pub fn cast<U: Element>(&self) -> Dense<U> {
        Dense {
            nrows: self.nrows,
            ncols: self.ncols,
            data: self.data.iter().map(|v| U::from_f64(v.to_f64())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::F16;

    #[test]
    fn zeros_and_shape() {
        let m: Dense<f32> = Dense::zeros(3, 5);
        assert_eq!(m.shape(), (3, 5));
        assert_eq!(m.count_zeros(), 15);
    }

    #[test]
    fn from_fn_and_get_set() {
        let mut m = Dense::<f32>::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
        assert_eq!(m.get(1, 2), 5.0);
        m.set(1, 2, 9.0);
        assert_eq!(m.get(1, 2), 9.0);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_validates_length() {
        let _ = Dense::<f32>::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Dense::<f32>::from_fn(3, 4, |i, j| (i * 7 + j) as f32);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), m.get(1, 2));
    }

    #[test]
    fn select_rows_reorders() {
        let m = Dense::<f32>::from_fn(3, 2, |i, _| i as f32);
        let p = m.select_rows(&[2, 0, 1]);
        assert_eq!(p.row(0), &[2.0, 2.0]);
        assert_eq!(p.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn eye_is_identity_under_reference_multiply() {
        let m: Dense<f32> = Dense::eye(4);
        assert_eq!(m.get(2, 2), 1.0);
        assert_eq!(m.get(2, 3), 0.0);
        assert_eq!(m.count_zeros(), 12);
    }

    #[test]
    fn cast_between_precisions() {
        let m = Dense::<f32>::from_fn(2, 2, |i, j| (i + j) as f32 * 0.5);
        let h: Dense<F16> = m.cast();
        let back: Dense<f32> = h.cast();
        assert_eq!(m, back, "small halves are exact in f16");
    }

    #[test]
    fn hconcat_then_split_roundtrips() {
        let b1 = Dense::<f32>::from_fn(3, 2, |i, j| (10 * i + j) as f32);
        let b2 = Dense::<f32>::from_fn(3, 4, |i, j| (100 * i + j) as f32);
        let b3 = Dense::<f32>::from_fn(3, 1, |i, _| i as f32);
        let wide = Dense::hconcat(&[&b1, &b2, &b3]);
        assert_eq!(wide.shape(), (3, 7));
        assert_eq!(wide.get(2, 1), b1.get(2, 1));
        assert_eq!(wide.get(2, 5), b2.get(2, 3));
        let parts = wide.split_cols(&[2, 4, 1]);
        assert_eq!(parts, vec![b1, b2, b3]);
    }

    #[test]
    fn split_cols_allows_zero_width_panels() {
        let m = Dense::<f32>::from_fn(2, 3, |i, j| (i + j) as f32);
        let parts = m.split_cols(&[0, 3]);
        assert_eq!(parts[0].shape(), (2, 0));
        assert_eq!(parts[1], m);
    }

    #[test]
    #[should_panic(expected = "share row count")]
    fn hconcat_rejects_mismatched_rows() {
        let a = Dense::<f32>::zeros(2, 1);
        let b = Dense::<f32>::zeros(3, 1);
        let _ = Dense::hconcat(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "must sum to the column count")]
    fn split_cols_validates_widths() {
        let m = Dense::<f32>::zeros(2, 3);
        let _ = m.split_cols(&[2, 2]);
    }

    #[test]
    fn vconcat_then_split_rows_roundtrips() {
        let c1 = Dense::<f32>::from_fn(2, 3, |i, j| (10 * i + j) as f32);
        let c2 = Dense::<f32>::from_fn(4, 3, |i, j| (100 * i + j) as f32);
        let c3 = Dense::<f32>::from_fn(1, 3, |_, j| j as f32);
        let tall = Dense::vconcat(&[&c1, &c2, &c3]);
        assert_eq!(tall.shape(), (7, 3));
        assert_eq!(tall.row(1), c1.row(1));
        assert_eq!(tall.row(5), c2.row(3));
        assert_eq!(tall.row(6), c3.row(0));
        let parts = tall.split_rows(&[2, 4, 1]);
        assert_eq!(parts, vec![c1, c2, c3]);
    }

    #[test]
    fn split_rows_allows_zero_height_panels() {
        let m = Dense::<f32>::from_fn(3, 2, |i, j| (i + j) as f32);
        let parts = m.split_rows(&[0, 3]);
        assert_eq!(parts[0].shape(), (0, 2));
        assert_eq!(parts[1], m);
    }

    #[test]
    #[should_panic(expected = "share column count")]
    fn vconcat_rejects_mismatched_cols() {
        let a = Dense::<f32>::zeros(1, 2);
        let b = Dense::<f32>::zeros(1, 3);
        let _ = Dense::vconcat(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "must sum to the row count")]
    fn split_rows_validates_heights() {
        let m = Dense::<f32>::zeros(3, 2);
        let _ = m.split_rows(&[2, 2]);
    }

    #[test]
    fn parallel_pack_paths_match_sequential() {
        // Above PAR_PACK_THRESHOLD both hconcat and select_rows take the
        // row-parallel path; values must match the small-path semantics.
        let a = Dense::<f32>::from_fn(512, 96, |i, j| (i * 131 + j) as f32);
        let b = Dense::<f32>::from_fn(512, 64, |i, j| (i * 31 + 7 * j) as f32);
        let wide = Dense::hconcat(&[&a, &b]);
        assert_eq!(wide.shape(), (512, 160));
        for (i, j) in [(0, 0), (100, 95), (511, 96), (511, 159), (3, 130)] {
            let want = if j < 96 {
                a.get(i, j)
            } else {
                b.get(i, j - 96)
            };
            assert_eq!(wide.get(i, j), want, "at ({i},{j})");
        }
        let perm: Vec<usize> = (0..512).rev().collect();
        let sel = a.select_rows(&perm);
        for i in [0usize, 17, 511] {
            assert_eq!(sel.row(i), a.row(511 - i), "row {i}");
        }
    }

    #[test]
    fn max_abs_diff_reports_largest_gap() {
        let a = Dense::<f32>::from_fn(2, 2, |_, _| 1.0);
        let mut b = a.clone();
        b.set(1, 1, 3.0);
        assert_eq!(a.max_abs_diff(&b), 2.0);
    }
}
