//! ELLPACK (ELL) format: every row padded to the same length — the classic
//! GPU SpMV layout (§II-B's format family), with perfectly coalesced
//! column-major storage but padding that explodes on skewed row lengths.
//! Provided for format-family completeness and as the storage whose padding
//! behaviour contrasts with BCSR's in the documentation and tests.

use crate::csr::Csr;
use crate::dense::Dense;
use crate::scalar::Element;

/// ELL sparse matrix: `nrows × width` slots, column-major (slot-major)
/// layout as GPUs consume it; unused slots hold column `usize::MAX`.
#[derive(Clone, Debug, PartialEq)]
pub struct Ell<T> {
    nrows: usize,
    ncols: usize,
    /// Slots per row (the maximum row length).
    width: usize,
    /// `col_idx[s * nrows + r]`: column of slot `s` of row `r`.
    col_idx: Vec<usize>,
    /// Values in the same layout.
    values: Vec<T>,
    nnz: usize,
}

/// Column marker for empty slots.
pub const EMPTY_SLOT: usize = usize::MAX;

impl<T: Element> Ell<T> {
    /// Converts from CSR; `width` becomes the maximum row length.
    pub fn from_csr(csr: &Csr<T>) -> Self {
        let nrows = csr.nrows();
        let width = (0..nrows).map(|r| csr.row_nnz(r)).max().unwrap_or(0);
        let mut col_idx = vec![EMPTY_SLOT; nrows * width];
        let mut values = vec![T::zero(); nrows * width];
        for r in 0..nrows {
            for (s, (&c, &v)) in csr.row_cols(r).iter().zip(csr.row_values(r)).enumerate() {
                col_idx[s * nrows + r] = c;
                values[s * nrows + r] = v;
            }
        }
        Ell {
            nrows,
            ncols: csr.ncols(),
            width,
            col_idx,
            values,
            nnz: csr.nnz(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }
    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }
    /// Slots per row.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }
    /// Number of true nonzeros (excluding padding slots).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Padding slots (stored but empty): `nrows·width − nnz`.
    pub fn padding(&self) -> usize {
        self.nrows * self.width - self.nnz
    }

    /// Slot `(row, s)`: `Some((col, value))` or `None` if empty.
    pub fn slot(&self, row: usize, s: usize) -> Option<(usize, T)> {
        let idx = s * self.nrows + row;
        let c = self.col_idx[idx];
        (c != EMPTY_SLOT).then(|| (c, self.values[idx]))
    }

    /// Reconstructs CSR.
    pub fn to_csr(&self) -> Csr<T> {
        let mut coo = crate::coo::Coo::with_capacity(self.nrows, self.ncols, self.nnz);
        for r in 0..self.nrows {
            for s in 0..self.width {
                if let Some((c, v)) = self.slot(r, s) {
                    if !v.is_zero() {
                        coo.push(r, c, v);
                    }
                }
            }
        }
        coo.to_csr()
    }

    /// Exact reference SpMM over the ELL traversal order (f64 accumulation).
    pub fn spmm_reference(&self, b: &Dense<T>) -> Dense<T> {
        assert_eq!(self.ncols, b.nrows(), "inner dimensions must match");
        let n = b.ncols();
        let mut out64 = vec![0f64; self.nrows * n];
        for s in 0..self.width {
            for r in 0..self.nrows {
                if let Some((c, v)) = self.slot(r, s) {
                    let a = v.to_f64();
                    let brow = b.row(c);
                    let orow = &mut out64[r * n..(r + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += a * bv.to_f64();
                    }
                }
            }
        }
        Dense::from_vec(self.nrows, n, out64.into_iter().map(T::from_f64).collect())
    }

    /// Payload bytes (values + 4-byte column indices for every slot).
    pub fn storage_bytes(&self) -> usize {
        self.nrows * self.width * (T::BYTES + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample() -> Csr<f32> {
        let mut coo = Coo::new(4, 6);
        coo.push(0, 0, 1.0);
        coo.push(0, 5, 2.0);
        coo.push(1, 2, 3.0);
        coo.push(3, 1, 4.0);
        coo.push(3, 3, 5.0);
        coo.push(3, 4, 6.0);
        coo.to_csr()
    }

    #[test]
    fn width_is_max_row_length() {
        let e = Ell::from_csr(&sample());
        assert_eq!(e.width(), 3);
        assert_eq!(e.padding(), 4 * 3 - 6);
    }

    #[test]
    fn column_major_slot_layout() {
        let e = Ell::from_csr(&sample());
        assert_eq!(e.slot(0, 0), Some((0, 1.0)));
        assert_eq!(e.slot(0, 1), Some((5, 2.0)));
        assert_eq!(e.slot(0, 2), None);
        assert_eq!(e.slot(2, 0), None, "empty row has no slots");
        assert_eq!(e.slot(3, 2), Some((4, 6.0)));
    }

    #[test]
    fn csr_roundtrip() {
        let m = sample();
        assert_eq!(Ell::from_csr(&m).to_csr(), m);
        let empty = Csr::<f32>::empty(3, 3);
        assert_eq!(Ell::from_csr(&empty).to_csr(), empty);
    }

    #[test]
    fn spmm_matches_csr_reference() {
        let m = sample();
        let b = Dense::from_fn(6, 3, |i, j| ((i * 2 + j) % 5) as f32 - 2.0);
        assert_eq!(Ell::from_csr(&m).spmm_reference(&b), m.spmm_reference(&b));
    }

    #[test]
    fn skewed_rows_explode_padding() {
        // One 100-long row among 99 singleton rows: ELL stores 100x100
        // slots for 199 nonzeros — the pathology that motivates blocked and
        // sliced formats.
        let mut coo = Coo::new(100, 100);
        for j in 0..100 {
            coo.push(0, j, 1.0f32);
        }
        for r in 1..100 {
            coo.push(r, 0, 1.0);
        }
        let e = Ell::from_csr(&coo.to_csr());
        assert_eq!(e.width(), 100);
        assert_eq!(e.padding(), 100 * 100 - 199);
        // >25x the storage a CSR of the same matrix needs.
        let csr_bytes = e.nnz() * (4 + 4) + 101 * 4;
        assert!(e.storage_bytes() > 25 * csr_bytes);
    }
}
