//! SR-BCRS (Strided Row-major Blocked CRS): the storage format of Magicube
//! (Li et al., SC'22), re-implemented as the substrate for the Magicube
//! baseline.
//!
//! The matrix is split into row panels of height `vec_len` (the column-vector
//! length). For every column where a panel has at least one nonzero, the full
//! `vec_len×1` column vector is stored densely. Vectors within a panel are
//! grouped into *strides* of `stride` vectors; if the vector count of a panel
//! is not a multiple of the stride, explicit **zero vectors are padded for
//! the last stride** — this stride padding is what blows up Magicube's memory
//! footprint on large unstructured matrices (§VI-B of the SMaT paper, and the
//! simulated OOMs in the baseline).

use crate::csr::Csr;
use crate::dense::Dense;
use crate::scalar::Element;

/// Sparse matrix in SR-BCRS layout.
#[derive(Clone, Debug, PartialEq)]
pub struct SrBcrs<T> {
    nrows: usize,
    ncols: usize,
    vec_len: usize,
    stride: usize,
    /// Offsets into `col_idx` per row panel (in vectors, including padding).
    panel_ptr: Vec<usize>,
    /// Column index of each stored vector; `usize::MAX` marks a padded zero
    /// vector.
    col_idx: Vec<usize>,
    /// Vector payloads: `vec_len` consecutive values per vector, stored
    /// stride-wise row-major: within one stride, value `r` of all `stride`
    /// vectors are contiguous.
    values: Vec<T>,
    nnz: usize,
}

/// Column index marker for padded zero vectors.
pub const PAD_COL: usize = usize::MAX;

impl<T: Element> SrBcrs<T> {
    /// Converts from CSR with the given vector length and stride.
    ///
    /// # Panics
    /// Panics if `vec_len` or `stride` is zero.
    pub fn from_csr(csr: &Csr<T>, vec_len: usize, stride: usize) -> Self {
        assert!(
            vec_len > 0 && stride > 0,
            "vec_len and stride must be nonzero"
        );
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        let npanels = nrows.div_ceil(vec_len);

        let mut panel_ptr = Vec::with_capacity(npanels + 1);
        panel_ptr.push(0usize);
        let mut col_idx: Vec<usize> = Vec::new();
        let mut values: Vec<T> = Vec::new();
        let mut present: Vec<usize> = Vec::new();

        for p in 0..npanels {
            let row_lo = p * vec_len;
            let row_hi = (row_lo + vec_len).min(nrows);

            present.clear();
            for r in row_lo..row_hi {
                present.extend_from_slice(csr.row_cols(r));
            }
            present.sort_unstable();
            present.dedup();

            let nvec = present.len();
            let padded = nvec.div_ceil(stride) * stride;
            let first_vec = col_idx.len();
            col_idx.extend_from_slice(&present);
            col_idx.resize(first_vec + padded, PAD_COL);

            // Stride-wise row-major payload: for each stride group, for each
            // in-vector row r, the r-th element of all `stride` vectors.
            let base = values.len();
            values.resize(base + padded * vec_len, T::zero());
            for (v, &c) in present.iter().enumerate() {
                let group = v / stride;
                let lane = v % stride;
                for r in row_lo..row_hi {
                    if let Some(val) = csr.get(r, c) {
                        if !val.is_zero() {
                            let lr = r - row_lo;
                            let off = base + group * stride * vec_len + lr * stride + lane;
                            values[off] = val;
                        }
                    }
                }
            }
            panel_ptr.push(col_idx.len());
        }

        SrBcrs {
            nrows,
            ncols,
            vec_len,
            stride,
            panel_ptr,
            col_idx,
            values,
            nnz: csr.nnz(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }
    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }
    /// Column-vector length (rows per panel).
    #[inline]
    pub fn vec_len(&self) -> usize {
        self.vec_len
    }
    /// Vector-group stride of the interleaved layout.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }
    /// Number of row panels, `ceil(nrows / vec_len)`.
    #[inline]
    pub fn npanels(&self) -> usize {
        self.panel_ptr.len() - 1
    }
    /// Stored vectors including stride padding.
    #[inline]
    pub fn nvectors(&self) -> usize {
        self.col_idx.len()
    }
    /// Stored vectors that carry data (excluding padded zero vectors).
    pub fn nvectors_real(&self) -> usize {
        self.col_idx.iter().filter(|&&c| c != PAD_COL).count()
    }
    /// True nonzeros, excluding all padding.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }
    /// Per-panel offsets into `col_idx`; length `npanels + 1`.
    #[inline]
    pub fn panel_ptr(&self) -> &[usize] {
        &self.panel_ptr
    }
    /// Column index of each stored vector ([`PAD_COL`] for padded vectors).
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Vectors (including padding) in panel `p`.
    #[inline]
    pub fn vectors_in_panel(&self, p: usize) -> usize {
        self.panel_ptr[p + 1] - self.panel_ptr[p]
    }

    /// Element `lr` of vector `v` (global vector index), decoding the
    /// stride-wise layout.
    #[inline]
    pub fn vector_element(&self, panel: usize, v_local: usize, lr: usize) -> T {
        let panel_base_vec = self.panel_ptr[panel];
        let group = v_local / self.stride;
        let lane = v_local % self.stride;
        let off = (panel_base_vec + group * self.stride) * self.vec_len + lr * self.stride + lane;
        self.values[off]
    }

    /// Total payload bytes including stride padding — the footprint that
    /// makes Magicube run out of memory on large matrices.
    pub fn payload_bytes(&self) -> usize {
        self.values.len() * T::BYTES
    }

    /// Index-structure bytes (panel_ptr + col_idx as 4-byte entries).
    pub fn index_bytes(&self) -> usize {
        (self.panel_ptr.len() + self.col_idx.len()) * 4
    }

    /// Explicitly stored zeros (in-vector padding + padded zero vectors).
    pub fn padding(&self) -> usize {
        self.nvectors() * self.vec_len - self.nnz
    }

    /// Reconstructs CSR (drops all padding).
    pub fn to_csr(&self) -> Csr<T> {
        let mut coo = crate::coo::Coo::with_capacity(self.nrows, self.ncols, self.nnz);
        for p in 0..self.npanels() {
            let row_lo = p * self.vec_len;
            for v in 0..self.vectors_in_panel(p) {
                let c = self.col_idx[self.panel_ptr[p] + v];
                if c == PAD_COL {
                    continue;
                }
                for lr in 0..self.vec_len {
                    let r = row_lo + lr;
                    if r >= self.nrows {
                        break;
                    }
                    let val = self.vector_element(p, v, lr);
                    if !val.is_zero() {
                        coo.push(r, c, val);
                    }
                }
            }
        }
        coo.to_csr()
    }

    /// Exact reference SpMM over the SR-BCRS structure (f64 accumulation).
    pub fn spmm_reference(&self, b: &Dense<T>) -> Dense<T> {
        assert_eq!(self.ncols, b.nrows(), "inner dimensions must match");
        let n = b.ncols();
        let mut out64 = vec![0f64; self.nrows * n];
        for p in 0..self.npanels() {
            let row_lo = p * self.vec_len;
            for v in 0..self.vectors_in_panel(p) {
                let c = self.col_idx[self.panel_ptr[p] + v];
                if c == PAD_COL {
                    continue;
                }
                let brow = b.row(c);
                for lr in 0..self.vec_len {
                    let r = row_lo + lr;
                    if r >= self.nrows {
                        break;
                    }
                    let a = self.vector_element(p, v, lr).to_f64();
                    if a == 0.0 {
                        continue;
                    }
                    let orow = &mut out64[r * n..(r + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += a * bv.to_f64();
                    }
                }
            }
        }
        Dense::from_vec(self.nrows, n, out64.into_iter().map(T::from_f64).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample() -> Csr<f32> {
        let mut coo = Coo::new(6, 8);
        coo.push(0, 0, 1.0);
        coo.push(1, 0, 2.0);
        coo.push(0, 3, 3.0);
        coo.push(2, 5, 4.0);
        coo.push(5, 7, 5.0);
        coo.to_csr()
    }

    #[test]
    fn panel_and_vector_counts() {
        let m = sample();
        let s = SrBcrs::from_csr(&m, 2, 2);
        // Panels (height 2): p0 rows 0-1 cols {0,3}; p1 rows 2-3 cols {5};
        // p2 rows 4-5 cols {7}. Stride 2 pads p1 and p2 to 2 vectors each.
        assert_eq!(s.npanels(), 3);
        assert_eq!(s.nvectors(), 6);
        assert_eq!(s.nvectors_real(), 4);
        assert_eq!(s.padding(), 6 * 2 - 5);
    }

    #[test]
    fn stride_wise_layout_decodes() {
        let m = sample();
        let s = SrBcrs::from_csr(&m, 2, 2);
        // Panel 0, vector 0 is column 0: elements (row0,row1) = (1, 2).
        assert_eq!(s.vector_element(0, 0, 0), 1.0);
        assert_eq!(s.vector_element(0, 0, 1), 2.0);
        // Panel 0, vector 1 is column 3: (3, 0).
        assert_eq!(s.vector_element(0, 1, 0), 3.0);
        assert_eq!(s.vector_element(0, 1, 1), 0.0);
    }

    #[test]
    fn csr_roundtrip() {
        let m = sample();
        for (v, st) in [(1, 1), (2, 2), (4, 2), (8, 4), (3, 5)] {
            let s = SrBcrs::from_csr(&m, v, st);
            assert_eq!(
                s.to_csr(),
                m,
                "roundtrip failed for vec_len={v} stride={st}"
            );
        }
    }

    #[test]
    fn spmm_reference_matches_csr() {
        let m = sample();
        let b = Dense::from_fn(8, 3, |i, j| ((i * 3 + j) % 5) as f32 - 2.0);
        let want = m.spmm_reference(&b);
        for (v, st) in [(2, 2), (4, 4), (8, 2)] {
            let s = SrBcrs::from_csr(&m, v, st);
            assert_eq!(s.spmm_reference(&b), want);
        }
    }

    #[test]
    fn stride_padding_grows_footprint() {
        let m = sample();
        let tight = SrBcrs::from_csr(&m, 2, 1);
        let padded = SrBcrs::from_csr(&m, 2, 8);
        assert!(padded.payload_bytes() > tight.payload_bytes());
        assert_eq!(tight.nvectors(), tight.nvectors_real());
    }

    #[test]
    fn vectors_per_panel_multiple_of_stride() {
        let m = sample();
        let s = SrBcrs::from_csr(&m, 2, 4);
        for p in 0..s.npanels() {
            assert_eq!(s.vectors_in_panel(p) % 4, 0);
        }
    }
}
