//! Coordinate (COO) format: the ingestion format for generators and Matrix
//! Market files, converted to CSR before any kernel runs.

use crate::csr::Csr;
use crate::scalar::Element;

/// Coordinate-format sparse matrix (triplet list, unsorted, duplicates
/// allowed until [`Coo::compact`] is called).
#[derive(Clone, Debug)]
pub struct Coo<T> {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Element> Coo<T> {
    /// Empty triplet list for an `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Coo {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Like [`Coo::new`] with pre-allocated room for `cap` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Coo {
            nrows,
            ncols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Builds directly from a triplet list.
    ///
    /// # Panics
    /// Panics if any coordinate is out of bounds.
    pub fn from_entries(nrows: usize, ncols: usize, entries: Vec<(usize, usize, T)>) -> Self {
        for &(r, c, _) in &entries {
            assert!(
                r < nrows && c < ncols,
                "entry ({r},{c}) out of bounds for {nrows}x{ncols}"
            );
        }
        Coo {
            nrows,
            ncols,
            entries,
        }
    }

    /// Appends a triplet. Zero values are kept (callers may store explicit
    /// zeros; `compact` drops them).
    pub fn push(&mut self, row: usize, col: usize, val: T) {
        assert!(
            row < self.nrows && col < self.ncols,
            "entry ({row},{col}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        self.entries.push((row, col, val));
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }
    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }
    /// Number of stored triplets (including duplicates and explicit zeros).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }
    /// Whether no triplets are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
    /// The stored `(row, col, value)` triplets, in insertion order.
    #[inline]
    pub fn entries(&self) -> &[(usize, usize, T)] {
        &self.entries
    }

    /// Sorts by (row, col), sums duplicates in f64, and drops entries that
    /// sum to zero. After this the triplet list is canonical.
    pub fn compact(&mut self) {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut out: Vec<(usize, usize, T)> = Vec::with_capacity(self.entries.len());
        for &(r, c, v) in &self.entries {
            match out.last_mut() {
                Some(last) if last.0 == r && last.1 == c => {
                    last.2 = T::from_f64(last.2.to_f64() + v.to_f64());
                }
                _ => out.push((r, c, v)),
            }
        }
        out.retain(|e| !e.2.is_zero());
        self.entries = out;
    }

    /// Reference SpMM through the canonical CSR conversion (duplicates
    /// summed, zeros dropped), f64 accumulation — bitwise identical to
    /// [`Csr::spmm_reference`] on [`Coo::to_csr`].
    ///
    /// # Panics
    /// Panics if `b.nrows() != self.ncols()`.
    pub fn spmm_reference(&self, b: &crate::dense::Dense<T>) -> crate::dense::Dense<T> {
        self.to_csr().spmm_reference(b)
    }

    /// Merges a sorted set of cell *overrides* into `base`: a base entry
    /// whose `(row, col)` appears in `overrides` is replaced by the
    /// override value, overrides at unstored cells become insertions, and
    /// a zero override deletes the cell. The result is the triplet list of
    /// `base ⊕ overrides` — the compaction operand of a delta overlay.
    ///
    /// `overrides` must be sorted by `(row, col)` with unique coordinates
    /// (debug-asserted); values are `f64` because overlays track exact
    /// widened payloads.
    ///
    /// # Panics
    /// Panics if an override coordinate is out of bounds for `base`.
    pub fn with_overrides(base: &Csr<T>, overrides: &[(usize, usize, f64)]) -> Coo<T> {
        debug_assert!(
            overrides
                .windows(2)
                .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)),
            "overrides must be sorted by (row, col) and unique"
        );
        let mut out = Coo::with_capacity(base.nrows(), base.ncols(), base.nnz() + overrides.len());
        for (r, c, v) in base.iter() {
            // Overridden base cells are skipped here; the override value
            // (if nonzero) is pushed below. A binary search per base entry
            // keeps the merge O(nnz·log(overlay)).
            if overrides
                .binary_search_by_key(&(r, c), |&(or, oc, _)| (or, oc))
                .is_err()
            {
                out.push(r, c, v);
            }
        }
        for &(r, c, v) in overrides {
            if v != 0.0 {
                out.push(r, c, T::from_f64(v));
            }
        }
        out
    }

    /// Converts to CSR. Duplicates are summed and zeros dropped on the way.
    pub fn to_csr(&self) -> Csr<T> {
        let mut canonical = self.clone();
        canonical.compact();
        let mut row_ptr = vec![0usize; self.nrows + 1];
        for &(r, _, _) in &canonical.entries {
            row_ptr[r + 1] += 1;
        }
        for i in 0..self.nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = canonical.entries.iter().map(|&(_, c, _)| c).collect();
        let values = canonical.entries.iter().map(|&(_, _, v)| v).collect();
        Csr::from_raw(self.nrows, self.ncols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut m = Coo::<f32>::new(2, 2);
        m.push(0, 0, 1.0);
        m.push(1, 1, 2.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_checks_bounds() {
        let mut m = Coo::<f32>::new(2, 2);
        m.push(2, 0, 1.0);
    }

    #[test]
    fn compact_sums_duplicates() {
        let mut m = Coo::<f32>::new(2, 2);
        m.push(0, 1, 1.5);
        m.push(0, 1, 2.5);
        m.push(1, 0, 3.0);
        m.compact();
        assert_eq!(m.entries(), &[(0, 1, 4.0f32), (1, 0, 3.0)]);
    }

    #[test]
    fn compact_drops_cancelling_duplicates() {
        let mut m = Coo::<f32>::new(1, 2);
        m.push(0, 0, 1.0);
        m.push(0, 0, -1.0);
        m.push(0, 1, 2.0);
        m.compact();
        assert_eq!(m.len(), 1);
        assert_eq!(m.entries()[0], (0, 1, 2.0));
    }

    #[test]
    fn to_csr_orders_rows_and_columns() {
        let mut m = Coo::<f32>::new(3, 3);
        m.push(2, 0, 5.0);
        m.push(0, 2, 1.0);
        m.push(0, 0, 2.0);
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.row_cols(0), &[0, 2]);
        assert_eq!(csr.row_cols(1), &[] as &[usize]);
        assert_eq!(csr.row_cols(2), &[0]);
        assert_eq!(csr.get(0, 0), Some(2.0));
    }

    #[test]
    fn spmm_reference_matches_csr_path() {
        let mut m = Coo::<f32>::new(3, 3);
        m.push(2, 0, 5.0);
        m.push(0, 2, 1.0);
        m.push(0, 0, 2.0);
        m.push(0, 0, 1.0); // duplicate, summed during conversion
        let b = crate::dense::Dense::from_fn(3, 2, |i, j| (i + 2 * j) as f32);
        assert_eq!(m.spmm_reference(&b), m.to_csr().spmm_reference(&b));
    }

    #[test]
    fn with_overrides_replaces_inserts_and_deletes() {
        let mut m = Coo::<f32>::new(3, 3);
        m.push(0, 0, 2.0);
        m.push(0, 2, 1.0);
        m.push(2, 0, 5.0);
        let base = m.to_csr();
        // Replace (0,0), delete (0,2), insert (1,1).
        let merged = Coo::with_overrides(&base, &[(0, 0, 7.0), (0, 2, 0.0), (1, 1, 4.0)]).to_csr();
        assert_eq!(merged.get(0, 0), Some(7.0));
        assert_eq!(merged.get(0, 2), None, "zero override deletes the cell");
        assert_eq!(merged.get(1, 1), Some(4.0));
        assert_eq!(merged.get(2, 0), Some(5.0), "untouched cells survive");
        assert_eq!(merged.nnz(), 3);
    }

    #[test]
    fn with_overrides_of_empty_set_is_identity() {
        let mut m = Coo::<f32>::new(2, 2);
        m.push(0, 1, 1.5);
        m.push(1, 0, -3.0);
        let base = m.to_csr();
        let merged = Coo::with_overrides(&base, &[]).to_csr();
        assert_eq!(merged.row_ptr(), base.row_ptr());
        assert_eq!(merged.col_idx(), base.col_idx());
        assert_eq!(merged.values(), base.values());
    }

    #[test]
    fn empty_matrix_roundtrip() {
        let m = Coo::<f32>::new(4, 4);
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.nrows(), 4);
    }
}
