//! Compressed Sparse Column (CSC), provided for completeness of the format
//! family discussed in §II-B of the paper. Internally a CSR of the transpose.

use crate::csr::Csr;
use crate::dense::Dense;
use crate::scalar::Element;

/// CSC sparse matrix with sorted row indices within each column.
#[derive(Clone, Debug, PartialEq)]
pub struct Csc<T> {
    /// CSR of the transpose: its rows are our columns.
    t: Csr<T>,
}

impl<T: Element> Csc<T> {
    /// Converts a CSR matrix into CSC.
    pub fn from_csr(csr: &Csr<T>) -> Self {
        Csc { t: csr.transpose() }
    }

    /// Builds from raw CSC arrays (`col_ptr`, `row_idx`, `values`).
    ///
    /// # Panics
    /// Panics on violated CSC invariants (delegates to CSR validation on the
    /// transpose).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
        values: Vec<T>,
    ) -> Self {
        Csc {
            t: Csr::from_raw(ncols, nrows, col_ptr, row_idx, values),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.t.ncols()
    }
    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.t.nrows()
    }
    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.t.nnz()
    }

    /// Row indices of column `j`.
    #[inline]
    pub fn col_rows(&self, j: usize) -> &[usize] {
        self.t.row_cols(j)
    }

    /// Values of column `j`.
    #[inline]
    pub fn col_values(&self, j: usize) -> &[T] {
        self.t.row_values(j)
    }

    /// Value at `(i, j)`, if stored.
    pub fn get(&self, i: usize, j: usize) -> Option<T> {
        self.t.get(j, i)
    }

    /// Converts back to CSR.
    pub fn to_csr(&self) -> Csr<T> {
        self.t.transpose()
    }

    /// Exact reference SpMM in column-major traversal order.
    pub fn spmm_reference(&self, b: &Dense<T>) -> Dense<T> {
        self.to_csr().spmm_reference(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample() -> Csr<f32> {
        let mut coo = Coo::new(3, 4);
        coo.push(0, 0, 1.0);
        coo.push(0, 3, 2.0);
        coo.push(2, 1, 3.0);
        coo.push(1, 3, 4.0);
        coo.to_csr()
    }

    #[test]
    fn csr_csc_roundtrip() {
        let m = sample();
        let c = Csc::from_csr(&m);
        assert_eq!(c.to_csr(), m);
        assert_eq!(c.nrows(), 3);
        assert_eq!(c.ncols(), 4);
    }

    #[test]
    fn column_access() {
        let c = Csc::from_csr(&sample());
        assert_eq!(c.col_rows(3), &[0, 1]);
        assert_eq!(c.col_values(3), &[2.0, 4.0]);
        assert_eq!(c.get(2, 1), Some(3.0));
        assert_eq!(c.get(2, 2), None);
    }

    #[test]
    fn spmm_matches_csr_reference() {
        let m = sample();
        let b = Dense::from_fn(4, 2, |i, j| (i + 2 * j) as f32);
        assert_eq!(Csc::from_csr(&m).spmm_reference(&b), m.spmm_reference(&b));
    }
}
