//! Matrix Market (`.mtx`) reader/writer, so real SuiteSparse files can be
//! dropped in wherever the harness uses the synthetic mimics.
//!
//! Supported: `matrix coordinate {real,integer,pattern} {general,symmetric,
//! skew-symmetric}` and `matrix array real general`.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::coo::Coo;
use crate::csr::Csr;
use crate::dense::Dense;
use crate::scalar::Element;

/// Errors produced by the Matrix Market parser.
#[derive(Debug)]
pub enum MtxError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed or unsupported content, with a line number and message.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
}

impl std::fmt::Display for MtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "I/O error: {e}"),
            MtxError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for MtxError {}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        MtxError::Io(e)
    }
}

fn parse_err(line: usize, msg: impl Into<String>) -> MtxError {
    MtxError::Parse {
        line,
        msg: msg.into(),
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Reads a sparse matrix in Matrix Market coordinate format from a reader.
pub fn read_coo<T: Element, R: Read>(reader: R) -> Result<Coo<T>, MtxError> {
    let mut lines = BufReader::new(reader).lines();
    let mut lineno = 0usize;

    let header = loop {
        match lines.next() {
            Some(l) => {
                lineno += 1;
                let l = l?;
                if !l.trim().is_empty() {
                    break l;
                }
            }
            None => return Err(parse_err(lineno, "empty file")),
        }
    };

    let header_lc = header.to_ascii_lowercase();
    let tokens: Vec<&str> = header_lc.split_whitespace().collect();
    if tokens.len() < 4 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(parse_err(lineno, "missing %%MatrixMarket matrix header"));
    }
    if tokens[2] != "coordinate" {
        return Err(parse_err(
            lineno,
            format!("unsupported storage '{}' (expected coordinate)", tokens[2]),
        ));
    }
    let field = match tokens[3] {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(parse_err(lineno, format!("unsupported field '{other}'"))),
    };
    let symmetry = match tokens.get(4).copied().unwrap_or("general") {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => return Err(parse_err(lineno, format!("unsupported symmetry '{other}'"))),
    };

    // Size line: first non-comment line.
    let size_line = loop {
        match lines.next() {
            Some(l) => {
                lineno += 1;
                let l = l?;
                let t = l.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break l;
            }
            None => return Err(parse_err(lineno, "missing size line")),
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(str::parse::<usize>)
        .collect::<Result<_, _>>()
        .map_err(|e| parse_err(lineno, format!("bad size line: {e}")))?;
    if dims.len() != 3 {
        return Err(parse_err(lineno, "size line must be 'nrows ncols nnz'"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::with_capacity(nrows, ncols, nnz);
    let mut seen = 0usize;
    for l in lines {
        lineno += 1;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing row"))?
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad row index: {e}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing col"))?
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad col index: {e}")))?;
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(parse_err(
                lineno,
                format!("coordinate ({r},{c}) out of 1-based bounds {nrows}x{ncols}"),
            ));
        }
        let v = match field {
            Field::Pattern => 1.0f64,
            Field::Real | Field::Integer => it
                .next()
                .ok_or_else(|| parse_err(lineno, "missing value"))?
                .parse::<f64>()
                .map_err(|e| parse_err(lineno, format!("bad value: {e}")))?,
        };
        let (r, c) = (r - 1, c - 1);
        coo.push(r, c, T::from_f64(v));
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric if r != c => coo.push(c, r, T::from_f64(v)),
            Symmetry::SkewSymmetric if r != c => coo.push(c, r, T::from_f64(-v)),
            _ => {}
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(
            lineno,
            format!("expected {nnz} entries, found {seen}"),
        ));
    }
    Ok(coo)
}

/// Reads a Matrix Market file into CSR.
pub fn read_csr_path<T: Element>(path: impl AsRef<Path>) -> Result<Csr<T>, MtxError> {
    let f = std::fs::File::open(path)?;
    Ok(read_coo::<T, _>(f)?.to_csr())
}

/// Reads Matrix Market content from a string into CSR (used by tests).
pub fn read_csr_str<T: Element>(content: &str) -> Result<Csr<T>, MtxError> {
    Ok(read_coo::<T, _>(content.as_bytes())?.to_csr())
}

/// Writes a CSR matrix in `coordinate real general` format.
pub fn write_csr<T: Element, W: Write>(m: &Csr<T>, mut w: W) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by smat-formats")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {}", r + 1, c + 1, v.to_f64())?;
    }
    Ok(())
}

/// Writes a dense matrix in `array real general` (column-major) format.
pub fn write_dense<T: Element, W: Write>(m: &Dense<T>, mut w: W) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix array real general")?;
    writeln!(w, "{} {}", m.nrows(), m.ncols())?;
    for j in 0..m.ncols() {
        for i in 0..m.nrows() {
            writeln!(w, "{}", m.get(i, j).to_f64())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_general_real() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
                   % comment\n\
                   3 4 3\n\
                   1 1 1.5\n\
                   2 3 -2.0\n\
                   3 4 0.25\n";
        let m: Csr<f32> = read_csr_str(src).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.get(0, 0), Some(1.5));
        assert_eq!(m.get(1, 2), Some(-2.0));
        assert_eq!(m.get(2, 3), Some(0.25));
    }

    #[test]
    fn parses_symmetric_expands_mirror() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n\
                   3 3 2\n\
                   2 1 5.0\n\
                   3 3 7.0\n";
        let m: Csr<f32> = read_csr_str(src).unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(1, 0), Some(5.0));
        assert_eq!(m.get(0, 1), Some(5.0));
        assert_eq!(m.get(2, 2), Some(7.0));
    }

    #[test]
    fn parses_skew_symmetric() {
        let src = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                   2 2 1\n\
                   2 1 3.0\n";
        let m: Csr<f32> = read_csr_str(src).unwrap();
        assert_eq!(m.get(1, 0), Some(3.0));
        assert_eq!(m.get(0, 1), Some(-3.0));
    }

    #[test]
    fn parses_pattern_as_ones() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n\
                   2 2 2\n\
                   1 2\n\
                   2 1\n";
        let m: Csr<f32> = read_csr_str(src).unwrap();
        assert_eq!(m.get(0, 1), Some(1.0));
        assert_eq!(m.get(1, 0), Some(1.0));
    }

    #[test]
    fn rejects_wrong_header() {
        assert!(read_csr_str::<f32>("not a matrix\n1 1 0\n").is_err());
    }

    #[test]
    fn rejects_out_of_bounds_coordinate() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        let err = read_csr_str::<f32>(src).unwrap_err();
        assert!(err.to_string().contains("out of 1-based bounds"));
    }

    #[test]
    fn rejects_entry_count_mismatch() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        let err = read_csr_str::<f32>(src).unwrap_err();
        assert!(err.to_string().contains("expected 2 entries"));
    }

    #[test]
    fn write_read_roundtrip() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
                   3 3 3\n1 1 1\n2 2 2\n3 1 -3.5\n";
        let m: Csr<f32> = read_csr_str(src).unwrap();
        let mut buf = Vec::new();
        write_csr(&m, &mut buf).unwrap();
        let back: Csr<f32> = read_csr_str(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(back, m);
    }
}
