//! Permutations used by the preprocessing stage (`A' = P·A`).

/// A permutation of `0..n`, stored as the image vector: position `i` of the
/// permuted object is taken from position `perm[i]` of the original
/// (gather semantics, `out[i] = in[perm[i]]`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<usize>,
}

impl Permutation {
    /// Identity permutation of length `n`.
    pub fn identity(n: usize) -> Self {
        Permutation {
            perm: (0..n).collect(),
        }
    }

    /// Builds a permutation from an image vector, verifying it is a bijection.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..perm.len()`. Use
    /// [`Permutation::try_from_vec`] for a typed-diagnostic error instead.
    pub fn from_vec(perm: Vec<usize>) -> Self {
        match Self::try_from_vec(perm) {
            Ok(p) => p,
            Err(diags) => panic!("{}", diags[0].message),
        }
    }

    /// Like [`Permutation::from_vec`] but returns every bijectivity
    /// violation as a typed [`Diagnostic`](smat_diag::Diagnostic) instead of
    /// panicking.
    ///
    /// # Errors
    /// Returns [`DiagCode::PermOutOfRange`](smat_diag::DiagCode::PermOutOfRange)
    /// and/or [`DiagCode::PermDuplicate`](smat_diag::DiagCode::PermDuplicate)
    /// diagnostics for each offending index.
    pub fn try_from_vec(perm: Vec<usize>) -> Result<Self, Vec<smat_diag::Diagnostic>> {
        let diags = crate::validate::validate_permutation(&perm);
        if !diags.is_empty() {
            return Err(diags);
        }
        Ok(Permutation { perm })
    }

    /// Length `n` of the permuted domain `0..n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the permutation is over the empty domain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Whether every element maps to itself.
    pub fn is_identity(&self) -> bool {
        self.perm.iter().enumerate().all(|(i, &p)| i == p)
    }

    /// The source index feeding destination `i`.
    #[inline]
    pub fn source_of(&self, i: usize) -> usize {
        self.perm[i]
    }

    /// Image vector (gather indices).
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.perm
    }

    /// Inverse permutation: `inv.source_of(self.source_of(i)) == i` ... more
    /// precisely, applying `self` then `inverse` restores the original order.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.perm.len()];
        for (i, &p) in self.perm.iter().enumerate() {
            inv[p] = i;
        }
        Permutation { perm: inv }
    }

    /// Composition: applying the returned permutation is equivalent to
    /// applying `self` first and then `after`.
    pub fn then(&self, after: &Permutation) -> Permutation {
        assert_eq!(self.len(), after.len());
        let perm = after.perm.iter().map(|&i| self.perm[i]).collect();
        Permutation { perm }
    }

    /// Applies the permutation to a slice, returning the gathered copy.
    pub fn apply<T: Clone>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.len());
        self.perm.iter().map(|&i| data[i].clone()).collect()
    }

    /// Destination position of original element `i` (scatter view).
    pub fn destination_of(&self, i: usize) -> usize {
        // O(n) on purpose: only used in tests and diagnostics.
        self.perm
            .iter()
            .position(|&p| p == i)
            .expect("index within range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.apply(&[10, 11, 12, 13, 14]), vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn apply_gathers() {
        let p = Permutation::from_vec(vec![2, 0, 1]);
        assert_eq!(p.apply(&['a', 'b', 'c']), vec!['c', 'a', 'b']);
    }

    #[test]
    fn inverse_restores_order() {
        let p = Permutation::from_vec(vec![3, 1, 0, 2]);
        let data = [5, 6, 7, 8];
        let shuffled = p.apply(&data);
        let restored = p.inverse().apply(&shuffled);
        assert_eq!(restored, data.to_vec());
    }

    #[test]
    fn composition_matches_sequential_application() {
        let p = Permutation::from_vec(vec![1, 2, 0]);
        let q = Permutation::from_vec(vec![2, 1, 0]);
        let data = ['x', 'y', 'z'];
        let seq = q.apply(&p.apply(&data));
        let composed = p.then(&q).apply(&data);
        assert_eq!(seq, composed);
    }

    #[test]
    #[should_panic(expected = "duplicate image")]
    fn from_vec_rejects_duplicates() {
        let _ = Permutation::from_vec(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_vec_rejects_out_of_range() {
        let _ = Permutation::from_vec(vec![0, 3, 1]);
    }

    #[test]
    fn try_from_vec_returns_typed_diagnostics() {
        let dup = Permutation::try_from_vec(vec![0, 0]).unwrap_err();
        assert_eq!(dup[0].code, smat_diag::DiagCode::PermDuplicate);
        let oob = Permutation::try_from_vec(vec![5]).unwrap_err();
        assert_eq!(oob[0].code, smat_diag::DiagCode::PermOutOfRange);
        assert!(Permutation::try_from_vec(vec![1, 0]).is_ok());
    }

    #[test]
    fn destination_of_is_inverse_of_source_of() {
        let p = Permutation::from_vec(vec![3, 1, 0, 2]);
        for i in 0..4 {
            assert_eq!(p.source_of(p.destination_of(i)), i);
        }
    }
}
