//! Content fingerprints for sparse matrices.
//!
//! A [`MatrixFingerprint`] identifies a matrix by shape, nonzero count, and
//! two 64-bit FNV-1a digests — one over the sparsity structure
//! (`row_ptr`/`col_idx`) and one over the value payload. It is the key
//! primitive of the serving registry: two CSR matrices with equal
//! fingerprints hold the same data with overwhelming probability, so their
//! one-time preprocessing (reordering + BCSR conversion + autotuning) can be
//! shared across requests.
//!
//! The digest is deterministic across runs and platforms: it hashes the raw
//! index integers as little-endian `u64` and each value through its exact
//! `f64` widening ([`Element::to_f64`] is exact for every supported storage
//! type), so the fingerprint does not depend on `HashMap` iteration order,
//! ASLR, or the host's `RandomState`.

use crate::csr::Csr;
use crate::scalar::Element;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over byte chunks (stable across platforms).
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs a byte slice.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Compact identity of a sparse matrix: shape, nonzero count, structure
/// and value digests, plus an overlay epoch. `Eq`/`Hash`-able, `Copy`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize)]
pub struct MatrixFingerprint {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Number of stored nonzeros.
    pub nnz: usize,
    /// FNV-1a digest of `row_ptr` followed by `col_idx`.
    pub structure_hash: u64,
    /// FNV-1a digest of the value payload (exact `f64` bit patterns).
    pub value_hash: u64,
    /// Overlay epoch: the number of in-place mutations applied on top of
    /// the fingerprinted base content. `0` for a freshly fingerprinted
    /// matrix ([`MatrixFingerprint::of_csr`]); a mutable engine stamps its
    /// current mutation counter in with [`MatrixFingerprint::with_epoch`].
    /// The epoch participates in `Eq`/`Hash`, so any cache keyed by
    /// fingerprint (plan caches, preflight memos, planner decisions) is
    /// invalidated by construction the moment the matrix mutates.
    pub epoch: u64,
}

impl MatrixFingerprint {
    /// Fingerprints a CSR matrix. Cost is one linear pass over the arrays;
    /// for the serving path this runs once per distinct matrix at
    /// submission time, not per request.
    pub fn of_csr<T: Element>(a: &Csr<T>) -> Self {
        let mut sh = Fnv1a::new();
        for &p in a.row_ptr() {
            sh.write_u64(p as u64);
        }
        for &c in a.col_idx() {
            sh.write_u64(c as u64);
        }
        let mut vh = Fnv1a::new();
        for v in a.values() {
            vh.write_u64(v.to_f64().to_bits());
        }
        MatrixFingerprint {
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz: a.nnz(),
            structure_hash: sh.finish(),
            value_hash: vh.finish(),
            epoch: 0,
        }
    }

    /// The same base identity at a given overlay epoch. Epoch 0 is the
    /// unmutated base; fingerprints at different epochs are unequal and
    /// hash apart, which is the whole invalidation mechanism.
    pub fn with_epoch(self, epoch: u64) -> Self {
        MatrixFingerprint { epoch, ..self }
    }

    /// Short hex form (`<structure>-<values>`), used in logs and stats.
    /// The overlay epoch is not part of the hex form (it identifies base
    /// content); [`std::fmt::Display`] appends it when nonzero.
    pub fn short_hex(&self) -> String {
        format!("{:016x}-{:016x}", self.structure_hash, self.value_hash)
    }
}

impl std::fmt::Display for MatrixFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{} nnz={} {}",
            self.nrows,
            self.ncols,
            self.nnz,
            self.short_hex()
        )?;
        if self.epoch > 0 {
            write!(f, " epoch={}", self.epoch)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::scalar::F16;

    fn sample(shift: usize, val: f64) -> Csr<F16> {
        let mut coo = Coo::new(16, 16);
        for i in 0..16 {
            coo.push(i, (i * 3 + shift) % 16, F16::from_f64(val));
        }
        coo.to_csr()
    }

    #[test]
    fn equal_matrices_equal_fingerprints() {
        let a = sample(0, 1.0);
        let b = sample(0, 1.0);
        assert_eq!(MatrixFingerprint::of_csr(&a), MatrixFingerprint::of_csr(&b));
    }

    #[test]
    fn structure_change_changes_structure_hash_only() {
        let a = MatrixFingerprint::of_csr(&sample(0, 1.0));
        let b = MatrixFingerprint::of_csr(&sample(1, 1.0));
        assert_ne!(a.structure_hash, b.structure_hash);
        assert_eq!(a.value_hash, b.value_hash, "same payload values");
        assert_ne!(a, b);
    }

    #[test]
    fn value_change_changes_value_hash_only() {
        let a = MatrixFingerprint::of_csr(&sample(0, 1.0));
        let b = MatrixFingerprint::of_csr(&sample(0, 2.0));
        assert_eq!(a.structure_hash, b.structure_hash);
        assert_ne!(a.value_hash, b.value_hash);
        assert_ne!(a, b);
    }

    #[test]
    fn shape_is_part_of_identity() {
        // Same (empty) payload, different declared shape.
        let a: Csr<F16> = Csr::empty(4, 8);
        let b: Csr<F16> = Csr::empty(4, 9);
        assert_ne!(MatrixFingerprint::of_csr(&a), MatrixFingerprint::of_csr(&b));
    }

    #[test]
    fn fingerprint_is_stable_across_element_types() {
        // The digest goes through exact f64 widening, so a cast to a wider
        // type that preserves every value yields the same value hash.
        let a = sample(0, 1.5);
        let wide: Csr<f32> = a.cast();
        let fa = MatrixFingerprint::of_csr(&a);
        let fw = MatrixFingerprint::of_csr(&wide);
        assert_eq!(fa.value_hash, fw.value_hash);
        assert_eq!(fa.structure_hash, fw.structure_hash);
    }

    #[test]
    fn display_and_hex_are_stable() {
        let f = MatrixFingerprint::of_csr(&sample(0, 1.0));
        let s = f.to_string();
        assert!(s.starts_with("16x16 nnz=16 "), "{s}");
        assert_eq!(f.short_hex().len(), 33);
        assert!(!s.contains("epoch"), "epoch 0 stays out of the display");
    }

    #[test]
    fn epoch_is_part_of_identity_but_not_of_the_hex_form() {
        let base = MatrixFingerprint::of_csr(&sample(0, 1.0));
        assert_eq!(base.epoch, 0);
        let mutated = base.with_epoch(3);
        assert_ne!(base, mutated, "epochs must not collide in caches");
        assert_eq!(mutated.with_epoch(0), base, "epoch is the only delta");
        assert_eq!(base.short_hex(), mutated.short_hex());
        let s = mutated.to_string();
        assert!(s.ends_with(" epoch=3"), "{s}");
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a test vector: "a" -> 0xaf63dc4c8601ec8c.
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
