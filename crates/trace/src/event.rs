//! The trace event model: dual-clock timestamps, track taxonomy, and typed
//! span/instant records.
//!
//! Every event carries a timestamp on exactly one of two clocks:
//!
//! * **Host clock** — monotonic nanoseconds since the tracer was enabled
//!   ([`Track::Host`] events). Measures what the CPU actually did: prepare
//!   phases, admission, queue waits, launch driving.
//! * **Simulated GPU clock** — nanoseconds of simulated device time
//!   ([`Track::Device`] and [`Track::Sm`] events). Each simulated device
//!   owns an independent cursor that advances launch by launch, so the
//!   device timeline reads like a real GPU profile even though the
//!   simulation runs at host speed.
//!
//! The two clocks are deliberately *not* aligned: comparing them would
//! suggest a precision the analytical simulator does not have. Exporters
//! place them on separate process tracks instead.

/// Which timeline an event lives on, and where it renders in a trace view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Track {
    /// A host thread (host clock). `thread` is a small dense id assigned in
    /// first-record order; the exporter maps it to the thread's name.
    Host {
        /// Tracer-assigned dense thread id.
        thread: u32,
    },
    /// A simulated device's launch timeline (sim clock).
    Device {
        /// Device index in the pool (0 for single-device runs).
        device: u32,
    },
    /// One SM's busy segment within a simulated device (sim clock).
    Sm {
        /// Device index in the pool.
        device: u32,
        /// SM index within the device.
        sm: u32,
    },
}

impl Track {
    /// True for events on the simulated-GPU clock.
    pub fn is_sim(&self) -> bool {
        !matches!(self, Track::Host { .. })
    }
}

/// Event shape: an interval or a point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// An interval `[ts_ns, ts_ns + dur_ns]` (Chrome phase `X`).
    Complete,
    /// A point in time (Chrome phase `i`); `dur_ns` is zero.
    Instant,
}

/// A typed argument value attached to an event.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer payload (counts, ids, bytes).
    U64(u64),
    /// Floating payload (milliseconds, rates).
    F64(f64),
    /// Free-form string payload (labels, member lists).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One recorded span or instant.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Event name (span name or instant label).
    pub name: String,
    /// Coarse category: `"pipeline"`, `"serve"`, `"sim"`, ….
    pub cat: &'static str,
    /// Timeline and render position.
    pub track: Track,
    /// Start timestamp in nanoseconds on the track's clock.
    pub ts_ns: u64,
    /// Duration in nanoseconds (zero for instants).
    pub dur_ns: u64,
    /// Interval or point.
    pub phase: Phase,
    /// Typed key/value payload.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// Duration in milliseconds.
    pub fn dur_ms(&self) -> f64 {
        self.dur_ns as f64 / 1e6
    }
}
