//! Human-readable roll-up of a drained trace: per-(category, name) span
//! statistics plus per-device simulated utilization.

use std::collections::BTreeMap;

use crate::event::{Phase, TraceEvent, Track};

/// Aggregate statistics of one span name within one category.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpanStats {
    /// Number of completed spans.
    pub count: u64,
    /// Summed duration in milliseconds.
    pub total_ms: f64,
    /// Longest single span in milliseconds.
    pub max_ms: f64,
}

impl SpanStats {
    /// Mean span duration in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ms / self.count as f64
        }
    }
}

/// Groups complete spans by `(category, name)`; instants are counted with
/// zero duration. Host and sim categories aggregate side by side — the
/// category name says which clock a row lives on.
pub fn span_stats(events: &[TraceEvent]) -> BTreeMap<(String, String), SpanStats> {
    let mut map: BTreeMap<(String, String), SpanStats> = BTreeMap::new();
    for e in events {
        // SM busy segments are sub-rows of the device-track launch span;
        // counting both would double the sim totals.
        if matches!(e.track, Track::Sm { .. }) {
            continue;
        }
        let entry = map.entry((e.cat.to_string(), e.name.clone())).or_default();
        entry.count += 1;
        if e.phase == Phase::Complete {
            let ms = e.dur_ms();
            entry.total_ms += ms;
            entry.max_ms = entry.max_ms.max(ms);
        }
    }
    map
}

/// Renders the summary table shown by `--trace` runs: one row per
/// `(category, span)` with count / total / mean / max, then one row per
/// simulated device with its busy span of the sim clock.
pub fn summary_table(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<22} {:>8} {:>12} {:>10} {:>10}\n",
        "category", "span", "count", "total ms", "mean ms", "max ms"
    ));
    for ((cat, name), s) in span_stats(events) {
        out.push_str(&format!(
            "{:<10} {:<22} {:>8} {:>12.3} {:>10.4} {:>10.4}\n",
            cat,
            name,
            s.count,
            s.total_ms,
            s.mean_ms(),
            s.max_ms
        ));
    }

    // Per-device sim-clock utilization: launch spans abut on the cursor, so
    // the device's busy window is [0, last end].
    let mut device_busy: BTreeMap<u32, (u64, u64)> = BTreeMap::new(); // dev -> (busy_ns, end_ns)
    for e in events {
        if let Track::Device { device } = e.track {
            let entry = device_busy.entry(device).or_default();
            entry.0 += e.dur_ns;
            entry.1 = entry.1.max(e.ts_ns + e.dur_ns);
        }
    }
    if !device_busy.is_empty() {
        out.push('\n');
        for (dev, (busy, end)) in device_busy {
            out.push_str(&format!(
                "device {dev}: {:.3} ms simulated kernel time over a {:.3} ms sim timeline\n",
                busy as f64 / 1e6,
                end as f64 / 1e6
            ));
        }
    }
    out
}
