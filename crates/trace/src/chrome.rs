//! Chrome Trace Event exporter.
//!
//! Renders drained events as the JSON object format consumed by Perfetto
//! and `chrome://tracing`: `{"traceEvents": [...], "displayTimeUnit":
//! "ms"}`. Host threads render under one process ("host"); each simulated
//! device renders as its own process with a "launches" track plus one track
//! per SM, so the per-SM busy/idle structure (the dc2 straggler story of
//! §VI) is visible at a glance.

use serde_json::Value;

use crate::event::{ArgValue, Phase, TraceEvent, Track};
use crate::recorder;

/// Chrome process id hosting all host-thread tracks.
const HOST_PID: u64 = 1;
/// Chrome process id of simulated device 0 (device `d` is `DEVICE_PID0 + d`).
const DEVICE_PID0: u64 = 100;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn arg_value(v: &ArgValue) -> Value {
    match v {
        ArgValue::U64(n) => Value::U64(*n),
        ArgValue::F64(x) => Value::F64(*x),
        ArgValue::Str(s) => Value::Str(s.clone()),
    }
}

fn pid_tid(track: &Track) -> (u64, u64) {
    match track {
        Track::Host { thread } => (HOST_PID, u64::from(*thread)),
        Track::Device { device } => (DEVICE_PID0 + u64::from(*device), 0),
        Track::Sm { device, sm } => (DEVICE_PID0 + u64::from(*device), 1 + u64::from(*sm)),
    }
}

fn metadata(name: &str, pid: u64, tid: Option<u64>, value: &str) -> Value {
    let mut fields = vec![
        ("name", Value::Str(name.to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::U64(pid)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid", Value::U64(tid)));
    }
    fields.push(("args", obj(vec![("name", Value::Str(value.to_string()))])));
    obj(fields)
}

/// Renders `events` (typically from [`recorder::drain`]) as a Chrome Trace
/// Event JSON document. Timestamps are emitted in microseconds as the
/// format requires; host and sim clocks land in separate processes.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out: Vec<Value> = Vec::with_capacity(events.len() + 16);

    // Process/thread naming metadata.
    out.push(metadata("process_name", HOST_PID, None, "host"));
    for (tid, name) in recorder::thread_names() {
        out.push(metadata(
            "thread_name",
            HOST_PID,
            Some(u64::from(tid)),
            &name,
        ));
    }
    let mut seen_devices: Vec<u32> = Vec::new();
    let mut seen_sms: Vec<(u32, u32)> = Vec::new();
    for e in events {
        match e.track {
            Track::Device { device } | Track::Sm { device, .. }
                if !seen_devices.contains(&device) =>
            {
                seen_devices.push(device);
            }
            _ => {}
        }
        if let Track::Sm { device, sm } = e.track {
            if !seen_sms.contains(&(device, sm)) {
                seen_sms.push((device, sm));
            }
        }
    }
    for d in &seen_devices {
        let pid = DEVICE_PID0 + u64::from(*d);
        out.push(metadata(
            "process_name",
            pid,
            None,
            &format!("device {d} (sim)"),
        ));
        out.push(metadata("thread_name", pid, Some(0), "launches"));
    }
    for (d, sm) in &seen_sms {
        let pid = DEVICE_PID0 + u64::from(*d);
        out.push(metadata(
            "thread_name",
            pid,
            Some(1 + u64::from(*sm)),
            &format!("SM {sm}"),
        ));
    }

    for e in events {
        let (pid, tid) = pid_tid(&e.track);
        let mut fields = vec![
            ("name", Value::Str(e.name.clone())),
            ("cat", Value::Str(e.cat.to_string())),
            ("pid", Value::U64(pid)),
            ("tid", Value::U64(tid)),
            ("ts", Value::F64(e.ts_ns as f64 / 1e3)),
        ];
        match e.phase {
            Phase::Complete => {
                fields.push(("ph", Value::Str("X".to_string())));
                fields.push(("dur", Value::F64(e.dur_ns as f64 / 1e3)));
            }
            Phase::Instant => {
                fields.push(("ph", Value::Str("i".to_string())));
                // Thread-scoped instant marker.
                fields.push(("s", Value::Str("t".to_string())));
            }
        }
        if !e.args.is_empty() {
            fields.push((
                "args",
                obj(e.args.iter().map(|(k, v)| (*k, arg_value(v))).collect()),
            ));
        }
        out.push(obj(fields));
    }

    obj(vec![
        ("traceEvents", Value::Array(out)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
    ])
    .to_string()
}
