//! `smat-trace`: low-overhead structured tracing and metrics for the whole
//! SMaT stack.
//!
//! The paper's argument is an attribution argument — Eq. (1) splits total
//! time into per-block work and startup cost, and §VI narrates *where
//! cycles go* matrix by matrix. This crate makes those attributions
//! first-class at runtime instead of end-of-run aggregates:
//!
//! * **Two clocks.** Host monotonic time for what the CPU did (prepare
//!   phases, admission, queue waits) and simulated GPU time for what the
//!   modeled device did (launches, per-SM busy segments). See
//!   [`event::Track`].
//! * **Lock-free hot path.** Recording appends to a per-thread buffer;
//!   buffers batch into shared slots at span boundaries. With tracing off,
//!   every instrumentation site costs a single relaxed atomic load
//!   ([`enabled`]).
//! * **Exporters.** [`chrome_trace_json`] emits Chrome Trace Event JSON
//!   (loadable in Perfetto / `chrome://tracing`, with devices and SMs as
//!   tracks); [`summary_table`] renders a per-span roll-up for terminals.
//!
//! Instrumentation lives in `smat` (pipeline phases), `smat-gpusim`
//! (per-launch, per-SM sim-time segments), and `smat-serve` (request
//! lifecycle). Enable with [`enable`] or the `--trace <path>` flag of
//! `examples/serve.rs` and the `reproduce` harness; consume with
//! [`drain`] → [`chrome_trace_json`]. See DESIGN.md §11 for the model.
//!
//! ```
//! use smat_trace as trace;
//!
//! trace::enable();
//! {
//!     let mut span = trace::span("bcsr_convert", "pipeline");
//!     span.arg("nblocks", 42u64);
//! } // records on drop
//! let events = trace::drain();
//! assert_eq!(events.len(), 1);
//! let json = trace::chrome_trace_json(&events);
//! assert!(json.contains("bcsr_convert"));
//! trace::disable();
//! ```

pub mod chrome;
pub mod event;
pub mod recorder;
pub mod summary;

pub use chrome::chrome_trace_json;
pub use event::{ArgValue, Phase, TraceEvent, Track};
pub use recorder::{
    complete_from, disable, drain, enable, enabled, flush_current_thread, host_now_ns, instant,
    record_launch, reset, span, thread_names, SpanGuard, TraceHandle,
};
pub use summary::{span_stats, summary_table, SpanStats};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    /// The recorder is process-global, so tests share state; this guard
    /// serializes them and resets between runs.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let g = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        reset();
        enable();
        g
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _g = serial();
        disable();
        {
            let _s = span("ignored", "test");
        }
        instant("ignored", "test", Vec::new());
        record_launch(0, "ignored", 100, &[50], Vec::new());
        assert!(drain().is_empty());
    }

    #[test]
    fn span_guard_records_complete_event_with_args() {
        let _g = serial();
        {
            let mut s = span("work", "test");
            s.arg("n", 8u64);
            std::thread::sleep(Duration::from_millis(2));
        }
        let events = drain();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.name, "work");
        assert_eq!(e.cat, "test");
        assert_eq!(e.phase, Phase::Complete);
        assert!(e.dur_ns >= 1_000_000, "span of >=2ms, got {}ns", e.dur_ns);
        assert_eq!(e.args, vec![("n", ArgValue::U64(8))]);
        assert!(matches!(e.track, Track::Host { .. }));
        disable();
    }

    #[test]
    fn nested_spans_nest_in_time() {
        let _g = serial();
        {
            let _outer = span("outer", "test");
            std::thread::sleep(Duration::from_millis(1));
            let _inner = span("inner", "test");
        }
        let events = drain();
        assert_eq!(events.len(), 2);
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        assert!(inner.ts_ns >= outer.ts_ns);
        assert!(inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns);
        disable();
    }

    #[test]
    fn launches_advance_the_device_sim_cursor() {
        let _g = serial();
        record_launch(3, "k1", 1000, &[400, 0, 600], Vec::new());
        record_launch(3, "k2", 500, &[500], Vec::new());
        let events = drain();
        let device: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.track, Track::Device { device: 3 }))
            .collect();
        assert_eq!(device.len(), 2);
        assert_eq!((device[0].ts_ns, device[0].dur_ns), (0, 1000));
        assert_eq!((device[1].ts_ns, device[1].dur_ns), (1000, 500));
        // SM segments: zero-busy SMs are skipped.
        let sms: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.track, Track::Sm { device: 3, .. }))
            .collect();
        assert_eq!(sms.len(), 3);
        disable();
    }

    #[test]
    fn cross_thread_events_are_drained_after_join() {
        let _g = serial();
        let h = std::thread::spawn(|| {
            let _s = span("worker", "test");
        });
        h.join().unwrap();
        let events = drain();
        assert!(events.iter().any(|e| e.name == "worker"));
        disable();
    }

    #[test]
    fn complete_from_uses_the_caller_start_time() {
        let _g = serial();
        let start = Instant::now();
        std::thread::sleep(Duration::from_millis(3));
        complete_from("waited", "test", start, vec![("seq", 7u64.into())]);
        let events = drain();
        assert_eq!(events.len(), 1);
        assert!(events[0].dur_ns >= 2_000_000);
        disable();
    }

    #[test]
    fn chrome_export_is_loadable_shape() {
        let _g = serial();
        {
            let _s = span("phase", "pipeline");
        }
        record_launch(0, "kernel", 2000, &[1000, 1000], Vec::new());
        let events = drain();
        let json = chrome_trace_json(&events);
        assert!(json.starts_with('{'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("device 0 (sim)"));
        assert!(json.contains("SM 1"));
        disable();
    }

    #[test]
    fn summary_groups_by_category_and_name() {
        let _g = serial();
        {
            let _a = span("alpha", "test");
        }
        {
            let _a = span("alpha", "test");
        }
        record_launch(0, "kernel", 1_000_000, &[1_000_000], Vec::new());
        let events = drain();
        let stats = span_stats(&events);
        assert_eq!(stats[&("test".into(), "alpha".into())].count, 2);
        assert_eq!(stats[&("sim".into(), "kernel".into())].count, 1);
        let table = summary_table(&events);
        assert!(table.contains("alpha"));
        assert!(table.contains("device 0"));
        disable();
    }
}
