//! The recorder: a process-global, thread-safe span/event sink whose
//! disabled path is a single relaxed atomic load.
//!
//! Hot-path design: every thread owns a private buffer (`thread_local!`,
//! no lock, no atomic RMW) and an [`Arc`]-shared flush slot registered with
//! the global collector. Recording appends to the private buffer; the
//! buffer drains into the slot (one uncontended mutex lock per batch) when
//! the outermost span of the thread closes, when the buffer grows past a
//! threshold, or when the thread exits. [`drain`] gathers every slot.
//! Threads other than the caller must be quiescent (joined, or between
//! requests) for their most recent events to be visible — which holds at
//! the export points of the serving example and the reproduce harness
//! (after worker shutdown / after the experiment returns).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::event::{ArgValue, Phase, TraceEvent, Track};

/// Local buffer size that forces a flush even inside a span.
const FLUSH_THRESHOLD: usize = 128;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

struct Slot {
    events: Mutex<Vec<TraceEvent>>,
}

struct Registry {
    slots: Mutex<Vec<Arc<Slot>>>,
    thread_names: Mutex<Vec<(u32, String)>>,
    /// Per-device simulated-time cursors (nanoseconds).
    sim_cursors: Mutex<HashMap<u32, u64>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        slots: Mutex::new(Vec::new()),
        thread_names: Mutex::new(Vec::new()),
        sim_cursors: Mutex::new(HashMap::new()),
    })
}

struct Local {
    buf: Vec<TraceEvent>,
    slot: Arc<Slot>,
    thread: u32,
    depth: u32,
}

impl Local {
    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        self.slot.events.lock().unwrap().append(&mut self.buf);
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(&mut Local) -> R) -> R {
    LOCAL.with(|cell| {
        let mut opt = cell.borrow_mut();
        let local = opt.get_or_insert_with(|| {
            let thread = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map_or_else(|| format!("thread-{thread}"), ToString::to_string);
            let slot = Arc::new(Slot {
                events: Mutex::new(Vec::new()),
            });
            let reg = registry();
            reg.slots.lock().unwrap().push(Arc::clone(&slot));
            reg.thread_names.lock().unwrap().push((thread, name));
            Local {
                buf: Vec::new(),
                slot,
                thread,
                depth: 0,
            }
        });
        f(local)
    })
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Whether tracing is currently on. This is the entire cost of every
/// instrumentation site when tracing is off: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on. The first call fixes the host-clock epoch; host
/// timestamps are nanoseconds since that instant.
pub fn enable() {
    let _ = epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns tracing off. Already-recorded events stay buffered for [`drain`];
/// spans opened while enabled still record on drop.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Nanoseconds since the tracer epoch on the host monotonic clock.
pub fn host_now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn instant_to_ns(t: Instant) -> u64 {
    t.saturating_duration_since(epoch()).as_nanos() as u64
}

fn record(local: &mut Local, event: TraceEvent) {
    local.buf.push(event);
    if local.depth == 0 || local.buf.len() >= FLUSH_THRESHOLD {
        local.flush();
    }
}

/// An open host-clock span. Records one [`Phase::Complete`] event covering
/// construction → drop. Inert (zero cost beyond the construction check)
/// when tracing was off at construction.
#[must_use = "a span measures the scope it is held in"]
pub struct SpanGuard {
    name: String,
    cat: &'static str,
    start_ns: u64,
    args: Vec<(&'static str, ArgValue)>,
    active: bool,
}

impl SpanGuard {
    /// Attaches a typed argument to the span (no-op when inert).
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.active {
            self.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur_ns = host_now_ns().saturating_sub(self.start_ns);
        with_local(|local| {
            local.depth = local.depth.saturating_sub(1);
            let event = TraceEvent {
                name: std::mem::take(&mut self.name),
                cat: self.cat,
                track: Track::Host {
                    thread: local.thread,
                },
                ts_ns: self.start_ns,
                dur_ns,
                phase: Phase::Complete,
                args: std::mem::take(&mut self.args),
            };
            record(local, event);
        });
    }
}

/// Opens a host-clock span named `name` in category `cat`. When tracing is
/// off this neither allocates nor touches thread-local state.
pub fn span(name: &str, cat: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name: String::new(),
            cat,
            start_ns: 0,
            args: Vec::new(),
            active: false,
        };
    }
    with_local(|local| local.depth += 1);
    SpanGuard {
        name: name.to_string(),
        cat,
        start_ns: host_now_ns(),
        args: Vec::new(),
        active: true,
    }
}

/// Records a host-clock interval that started at `start` (captured with
/// [`Instant::now`] before tracing decisions were made — e.g. a request's
/// enqueue time) and ends now.
pub fn complete_from(
    name: &str,
    cat: &'static str,
    start: Instant,
    args: Vec<(&'static str, ArgValue)>,
) {
    if !enabled() {
        return;
    }
    let ts_ns = instant_to_ns(start);
    let dur_ns = host_now_ns().saturating_sub(ts_ns);
    with_local(|local| {
        let event = TraceEvent {
            name: name.to_string(),
            cat,
            track: Track::Host {
                thread: local.thread,
            },
            ts_ns,
            dur_ns,
            phase: Phase::Complete,
            args,
        };
        record(local, event);
    });
}

/// Records a host-clock point event.
pub fn instant(name: &str, cat: &'static str, args: Vec<(&'static str, ArgValue)>) {
    if !enabled() {
        return;
    }
    with_local(|local| {
        let event = TraceEvent {
            name: name.to_string(),
            cat,
            track: Track::Host {
                thread: local.thread,
            },
            ts_ns: host_now_ns(),
            dur_ns: 0,
            phase: Phase::Instant,
            args,
        };
        record(local, event);
    });
}

/// Records one simulated kernel launch on `device`'s sim-clock timeline:
/// a device-track interval of `total_ns` starting at the device's cursor,
/// plus one busy segment per SM with nonzero `per_sm_busy_ns`. Advances the
/// cursor by `total_ns` so consecutive launches abut like a real profile.
pub fn record_launch(
    device: usize,
    label: &str,
    total_ns: u64,
    per_sm_busy_ns: &[u64],
    args: Vec<(&'static str, ArgValue)>,
) {
    if !enabled() {
        return;
    }
    let device = device as u32;
    let t0 = {
        let mut cursors = registry().sim_cursors.lock().unwrap();
        let cursor = cursors.entry(device).or_insert(0);
        let t0 = *cursor;
        *cursor += total_ns;
        t0
    };
    let label = if label.is_empty() { "launch" } else { label };
    with_local(|local| {
        record(
            local,
            TraceEvent {
                name: label.to_string(),
                cat: "sim",
                track: Track::Device { device },
                ts_ns: t0,
                dur_ns: total_ns,
                phase: Phase::Complete,
                args,
            },
        );
        for (sm, &busy) in per_sm_busy_ns.iter().enumerate() {
            if busy == 0 {
                continue;
            }
            record(
                local,
                TraceEvent {
                    name: label.to_string(),
                    cat: "sim",
                    track: Track::Sm {
                        device,
                        sm: sm as u32,
                    },
                    ts_ns: t0,
                    dur_ns: busy,
                    phase: Phase::Complete,
                    args: Vec::new(),
                },
            );
        }
    });
}

/// Flushes the calling thread's private buffer into its shared slot.
pub fn flush_current_thread() {
    LOCAL.with(|cell| {
        if let Some(local) = cell.borrow_mut().as_mut() {
            local.flush();
        }
    });
}

/// Collects every event recorded so far, ordered by track then timestamp,
/// and leaves the buffers empty. Events still private to *other* running
/// threads are not visible until those threads flush (outermost span close,
/// threshold, or exit) — drain after workers quiesce.
pub fn drain() -> Vec<TraceEvent> {
    flush_current_thread();
    let mut events = Vec::new();
    for slot in registry().slots.lock().unwrap().iter() {
        events.append(&mut slot.events.lock().unwrap());
    }
    events.sort_by(|a, b| {
        track_key(&a.track)
            .cmp(&track_key(&b.track))
            .then(a.ts_ns.cmp(&b.ts_ns))
    });
    events
}

/// Clears buffered events and rewinds every device's sim-clock cursor
/// (thread registrations persist). Intended for tests and for separating
/// phases that export independently.
pub fn reset() {
    flush_current_thread();
    for slot in registry().slots.lock().unwrap().iter() {
        slot.events.lock().unwrap().clear();
    }
    registry().sim_cursors.lock().unwrap().clear();
}

fn track_key(t: &Track) -> (u32, u32, u32) {
    match t {
        Track::Host { thread } => (0, *thread, 0),
        Track::Device { device } => (1, *device, 0),
        Track::Sm { device, sm } => (1, *device, 1 + sm),
    }
}

/// Registered `(id, name)` pairs for host threads that have recorded.
pub fn thread_names() -> Vec<(u32, String)> {
    registry().thread_names.lock().unwrap().clone()
}

/// A cheap, copyable facade over the process-global tracer — the
/// `ServerStats`-adjacent handle the serving API exposes, usable anywhere
/// without plumbing a tracer reference through the stack.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceHandle;

impl TraceHandle {
    /// Creates a handle. All handles alias the same global recorder.
    pub fn new() -> Self {
        TraceHandle
    }

    /// Whether tracing is on (see [`enabled`]).
    pub fn enabled(self) -> bool {
        enabled()
    }

    /// Turns tracing on (see [`enable`]).
    pub fn enable(self) {
        enable();
    }

    /// Turns tracing off (see [`disable`]).
    pub fn disable(self) {
        disable();
    }

    /// Drains every buffered event (see [`drain`]).
    pub fn drain(self) -> Vec<TraceEvent> {
        drain()
    }
}
