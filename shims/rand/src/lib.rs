//! Minimal in-tree stand-in for the `rand` crate (offline build).
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods the
//! workspace generators call: `gen::<f64>()`, `gen_range(a..b)`, and
//! `gen_range(a..=b)` over `usize`. Streams are deterministic per seed but
//! do **not** bit-match the real `rand` crate — generator outputs are only
//! required to be reproducible, not identical to upstream.

use std::ops::{Range, RangeInclusive};

/// Core uniform-bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types seedable from a `u64` (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling a `T` uniformly from an RNG (stand-in for `Standard`).
pub trait SampleUniform: Sized {
    /// Draws one value covering the type's standard range.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer draw from `[0, bound)` by rejection.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + bounded_u64(rng, span) as i64) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64 - lo as i64) as u64;
                (lo as i64 + bounded_u64(rng, span + 1) as i64) as $t
            }
        }
    )*};
}
impl_signed_range!(isize, i64, i32, i16, i8);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniform value of type `T`.
    fn gen<T: SampleUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — a small, fast, high-quality generator; the shim's
    /// replacement for rand's `StdRng` (which is ChaCha12 upstream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 stream expansion, as recommended by the xoshiro
            // authors for seeding.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the shim's small RNG is the same generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_inc = [false; 3];
        for _ in 0..100 {
            seen_inc[r.gen_range(0..=2usize)] = true;
        }
        assert!(seen_inc.iter().all(|&s| s));
    }

    #[test]
    fn signed_ranges() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let v = r.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&v));
        }
    }
}
