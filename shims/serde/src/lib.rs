//! Minimal in-tree stand-in for the `serde` crate.
//!
//! The build environment has no network access to a registry, so the
//! workspace vendors the *exact* API surface it uses: a [`Serialize`] trait
//! that lowers values to a JSON [`Value`] tree, plus the derive macro
//! re-exported from the companion `serde_derive` shim. `serde_json` (also a
//! shim) renders [`Value`] as JSON text.
//!
//! This is intentionally not a general serde implementation: there is no
//! `Serializer` abstraction, no `Deserialize`, and no `#[serde(...)]`
//! attribute support — none of which the workspace needs.

pub use serde_derive::Serialize;

/// A JSON value tree — the single serialization target of this shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number. Non-finite values render as `null`.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Numeric view (any of the three number variants), as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

macro_rules! impl_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match *self {
                    Value::U64(v) => v as i128 == *other as i128,
                    Value::I64(v) => i128::from(v) == *other as i128,
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
impl_eq_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}
impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    write!(f, "null")
                }
            }
            Value::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_json(s, &mut buf);
                f.write_str(&buf)
            }
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    escape_json(k, &mut buf);
                    write!(f, "{buf}:{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Types that can lower themselves to a JSON [`Value`].
pub trait Serialize {
    /// Lowers `self` into the JSON value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_json() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(3)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("s".into(), Value::Str("x\"y".into())),
        ]);
        assert_eq!(v.to_string(), r#"{"a":3,"b":[true,null],"s":"x\"y"}"#);
    }

    #[test]
    fn index_and_as_f64() {
        let v = Value::Object(vec![("ms".into(), Value::F64(1.5))]);
        assert_eq!(v["ms"].as_f64(), Some(1.5));
        assert!(v["missing"].is_null());
    }
}
