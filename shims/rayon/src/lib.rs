//! Minimal in-tree stand-in for `rayon` (offline build).
//!
//! Implements the one pattern the workspace uses —
//! `(0..n).into_par_iter().map(f).collect::<Vec<_>>()` — with real
//! parallelism via `std::thread::scope`: the index range is split into one
//! contiguous chunk per available core, each chunk is mapped on its own
//! thread, and the per-chunk outputs are concatenated in index order, so
//! results are ordered exactly like rayon's.

use std::ops::Range;

/// The rayon-style prelude: `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

/// Conversion into a parallel iterator (only `Range<usize>` is supported).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over an index range.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps each index through `f` (lazily; work happens in `collect`).
    pub fn map<F, R>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        ParMap {
            range: self.range,
            f,
        }
    }
}

/// A mapped parallel range awaiting collection.
pub struct ParMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParMap<F> {
    /// Runs the map in parallel and collects the outputs in index order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.range.len();
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        if n < 2 || threads < 2 {
            return self.range.map(&self.f).collect();
        }
        let nchunks = threads.min(n);
        let chunk = n.div_ceil(nchunks);
        let start = self.range.start;
        let f = &self.f;
        let mut parts: Vec<Vec<R>> = Vec::with_capacity(nchunks);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..nchunks)
                .map(|c| {
                    let lo = start + c * chunk;
                    let hi = (lo + chunk).min(start + n);
                    scope.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("par_iter worker panicked"));
            }
        });
        parts.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn empty_and_single() {
        let v: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let v: Vec<usize> = (3..4).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(v, vec![4]);
    }
}
