//! Minimal in-tree stand-in for `rayon` (offline build).
//!
//! Implements the two patterns the workspace uses —
//! `(0..n).into_par_iter().map(f).collect::<Vec<_>>()` and
//! `vec.into_par_iter().map(f).collect()` / `.for_each(f)` — with real
//! parallelism via `std::thread::scope`: the input is split into one
//! contiguous chunk per available core, each chunk is mapped on its own
//! thread, and the per-chunk outputs are concatenated in index order, so
//! results are ordered exactly like rayon's. `Vec` sources may carry
//! mutable borrows (e.g. disjoint `&mut [T]` sub-slices), which is what the
//! parallel-fill BCSR conversion uses to write a preallocated buffer from
//! several threads without unsafe code.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The rayon-style prelude: `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

/// Programmatic thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `RAYON_NUM_THREADS` parsed once at first parallel call (like rayon's
/// global pool, which reads it when the pool is built).
fn env_num_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// Overrides the worker-thread count for subsequent parallel calls
/// (`0` restores the default). Mirrors `RAYON_NUM_THREADS`, but — unlike
/// the env var, which is read once — may be changed at any time, which is
/// what the thread-count determinism tests use to sweep 1/2/8 workers
/// inside one process.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker-thread count parallel calls will use: the
/// [`set_num_threads`] override if set, else `RAYON_NUM_THREADS` if set
/// and parseable, else `std::thread::available_parallelism()`.
pub fn current_num_threads() -> usize {
    let over = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    let env = env_num_threads();
    if env > 0 {
        return env;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Number of worker chunks for an input of length `n`.
fn chunk_plan(n: usize) -> Option<(usize, usize)> {
    let threads = current_num_threads();
    if n < 2 || threads < 2 {
        return None;
    }
    let nchunks = threads.min(n);
    Some((nchunks, n.div_ceil(nchunks)))
}

/// Conversion into a parallel iterator (`Range<usize>` and `Vec<I>`).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over an index range.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps each index through `f` (lazily; work happens in `collect`).
    pub fn map<F, R>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        ParMap {
            range: self.range,
            f,
        }
    }
}

/// A mapped parallel range awaiting collection.
pub struct ParMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParMap<F> {
    /// Runs the map in parallel and collects the outputs in index order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.range.len();
        let Some((nchunks, chunk)) = chunk_plan(n) else {
            return self.range.map(&self.f).collect();
        };
        let start = self.range.start;
        let f = &self.f;
        let mut parts: Vec<Vec<R>> = Vec::with_capacity(nchunks);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..nchunks)
                .map(|c| {
                    let lo = start + c * chunk;
                    let hi = (lo + chunk).min(start + n);
                    scope.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("par_iter worker panicked"));
            }
        });
        parts.into_iter().flatten().collect()
    }
}

impl<I: Send> IntoParallelIterator for Vec<I> {
    type Iter = ParVec<I>;
    fn into_par_iter(self) -> ParVec<I> {
        ParVec { items: self }
    }
}

/// Parallel iterator over the owned items of a `Vec`.
pub struct ParVec<I> {
    items: Vec<I>,
}

impl<I: Send> ParVec<I> {
    /// Maps each item through `f` (lazily; work happens in `collect`).
    pub fn map<F, R>(self, f: F) -> ParVecMap<I, F>
    where
        F: Fn(I) -> R + Sync,
        R: Send,
    {
        ParVecMap {
            items: self.items,
            f,
        }
    }

    /// Consumes each item with `f` in parallel (chunked like `collect`);
    /// used to fill disjoint `&mut [T]` segments of a preallocated buffer.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        self.map(f).collect::<Vec<()>, ()>();
    }
}

/// A mapped parallel `Vec` awaiting collection.
pub struct ParVecMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send, F> ParVecMap<I, F> {
    /// Runs the map in parallel and collects the outputs in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(I) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        let Some((nchunks, chunk)) = chunk_plan(n) else {
            return self.items.into_iter().map(&self.f).collect();
        };
        let f = &self.f;
        // Split the items into per-thread chunks up front (preserves order).
        let mut chunks: Vec<Vec<I>> = Vec::with_capacity(nchunks);
        let mut items = self.items;
        for c in (0..nchunks).rev() {
            chunks.push(items.split_off((c * chunk).min(items.len())));
        }
        chunks.reverse();
        let mut parts: Vec<Vec<R>> = Vec::with_capacity(nchunks);
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|ch| scope.spawn(move || ch.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                parts.push(h.join().expect("par_iter worker panicked"));
            }
        });
        parts.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn empty_and_single() {
        let v: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let v: Vec<usize> = (3..4).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(v, vec![4]);
    }

    #[test]
    fn vec_collect_preserves_order() {
        let src: Vec<usize> = (0..997).collect();
        let v: Vec<usize> = src.into_par_iter().map(|i| i * 3).collect();
        assert_eq!(v.len(), 997);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 3));
    }

    #[test]
    fn thread_override_wins_and_zero_restores_the_default() {
        // No other test in this crate touches the override, so the global
        // is safe to probe here even under the parallel test runner.
        crate::set_num_threads(3);
        assert_eq!(crate::current_num_threads(), 3);
        let v: Vec<usize> = (0..100).into_par_iter().map(|i| i + 1).collect();
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
        crate::set_num_threads(0);
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn vec_for_each_fills_disjoint_segments() {
        let mut buf = vec![0u32; 100];
        let mut segs: Vec<(usize, &mut [u32])> = Vec::new();
        let mut rest = buf.as_mut_slice();
        let mut idx = 0;
        while !rest.is_empty() {
            let take = rest.len().min(7);
            let (head, tail) = rest.split_at_mut(take);
            segs.push((idx, head));
            rest = tail;
            idx += 1;
        }
        segs.into_par_iter().for_each(|(i, seg)| {
            for (j, x) in seg.iter_mut().enumerate() {
                *x = (i * 1000 + j) as u32;
            }
        });
        for (k, &x) in buf.iter().enumerate() {
            assert_eq!(x, ((k / 7) * 1000 + k % 7) as u32);
        }
    }
}
