//! Minimal in-tree stand-in for `serde_json`: the [`Value`] tree lives in
//! the `serde` shim; this crate adds text rendering ([`to_string`]) and the
//! [`json!`] object/array literal macro — the only pieces of serde_json the
//! workspace uses.

pub use serde::Value;

/// Serialization error. The shim's rendering is infallible, so this type is
/// never constructed, but the `Result` signature mirrors the real crate.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers any serializable value to a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Renders any serializable value as compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Builds a [`Value`] from a JSON-ish literal.
///
/// Supported forms: `json!(null)`, `json!([expr, ...])`, and
/// `json!({ "key": expr, ... })` with string-literal keys and arbitrary
/// serializable value expressions (trailing commas allowed). Nested braces
/// must themselves be `json!` calls — which is all this workspace writes.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    #[test]
    fn json_macro_builds_objects() {
        let nnz = 42usize;
        let v = json!({
            "experiment": "t",
            "nnz": nnz,
            "ratio": 1.5,
        });
        assert_eq!(v["nnz"].as_u64(), Some(42));
        assert_eq!(
            super::to_string(&v).unwrap(),
            r#"{"experiment":"t","nnz":42,"ratio":1.5}"#
        );
    }

    #[test]
    fn json_macro_arrays_and_null() {
        assert!(json!(null).is_null());
        let v = json!([1, 2, 3]);
        assert_eq!(v.as_array().unwrap().len(), 3);
    }
}
