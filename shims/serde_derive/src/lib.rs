//! `#[derive(Serialize)]` for the in-tree `serde` shim.
//!
//! Implemented directly over `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are equally unfetchable offline). Supports exactly what the
//! workspace derives on:
//!
//! * non-generic structs with named fields → JSON object;
//! * non-generic enums with unit variants (→ `"VariantName"` string) and
//!   named-field variants (→ externally tagged `{"VariantName": {...}}`),
//!   matching serde's default representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the shim trait) for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    match generate(&tokens) {
        Ok(code) => code.parse().expect("generated impl must parse"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(tokens: &[TokenTree]) -> Result<String, String> {
    let mut i = 0;
    // Skip attributes (`#[...]`) and visibility up to the `struct`/`enum`
    // keyword.
    let mut kind = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if *id.to_string() == *"struct" => {
                kind = Some("struct");
                i += 1;
                break;
            }
            TokenTree::Ident(id) if *id.to_string() == *"enum" => {
                kind = Some("enum");
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let kind = kind.ok_or("derive(Serialize) shim: expected struct or enum")?;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive(Serialize) shim: expected type name".into()),
    };
    i += 1;
    // Reject generics: the workspace never derives on generic types, and
    // supporting them here is not worth the parsing complexity.
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive(Serialize) shim: generic type `{name}` is unsupported"
        ));
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break g.stream().into_iter().collect::<Vec<_>>();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!(
                    "derive(Serialize) shim: unit/tuple struct `{name}` is unsupported"
                ));
            }
            Some(_) => i += 1,
            None => {
                return Err(format!(
                    "derive(Serialize) shim: `{name}` has no brace-delimited body"
                ));
            }
        }
    };

    let imp = if kind == "struct" {
        let fields = field_names(&body)?;
        let mut pushes = String::new();
        for f in &fields {
            pushes.push_str(&format!(
                "fields.push((String::from({f:?}), serde::Serialize::to_value(&self.{f})));\n"
            ));
        }
        format!(
            "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
             let mut fields: Vec<(String, serde::Value)> = Vec::new();\n\
             {pushes}\
             serde::Value::Object(fields)\n\
             }}\n}}\n"
        )
    } else {
        let mut arms = String::new();
        for chunk in split_top_level(&body) {
            let v = parse_variant(&chunk)?;
            match v {
                Variant::Unit(vname) => arms.push_str(&format!(
                    "{name}::{vname} => serde::Value::Str(String::from({vname:?})),\n"
                )),
                Variant::Named(vname, fields) => {
                    let binders = fields.join(", ");
                    let mut pushes = String::new();
                    for f in &fields {
                        pushes.push_str(&format!(
                            "fields.push((String::from({f:?}), serde::Serialize::to_value({f})));\n"
                        ));
                    }
                    arms.push_str(&format!(
                        "{name}::{vname} {{ {binders} }} => {{\n\
                         let mut fields: Vec<(String, serde::Value)> = Vec::new();\n\
                         {pushes}\
                         serde::Value::Object(vec![(String::from({vname:?}), serde::Value::Object(fields))])\n\
                         }},\n"
                    ));
                }
            }
        }
        format!(
            "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
             match self {{\n{arms}}}\n\
             }}\n}}\n"
        )
    };
    Ok(imp)
}

enum Variant {
    Unit(String),
    Named(String, Vec<String>),
}

/// Splits a token slice on top-level commas, dropping empty chunks.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            other => cur.push(other.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Field names of a named-field body: per comma chunk, skip attributes and
/// visibility, then take the ident preceding the `:`.
fn field_names(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level(body) {
        let mut j = 0;
        while j < chunk.len() {
            match &chunk[j] {
                TokenTree::Punct(p) if p.as_char() == '#' => j += 2,
                TokenTree::Ident(id) if *id.to_string() == *"pub" => {
                    j += 1;
                    if matches!(&chunk.get(j), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        j += 1;
                    }
                }
                TokenTree::Ident(id) => {
                    names.push(id.to_string());
                    break;
                }
                _ => return Err("derive(Serialize) shim: unexpected field syntax".into()),
            }
        }
    }
    Ok(names)
}

fn parse_variant(chunk: &[TokenTree]) -> Result<Variant, String> {
    let mut j = 0;
    // Skip variant attributes.
    while matches!(&chunk.get(j), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        j += 2;
    }
    let name = match chunk.get(j) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive(Serialize) shim: expected variant name".into()),
    };
    j += 1;
    match chunk.get(j) {
        None => Ok(Variant::Unit(name)),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Variant::Named(name, field_names(&body)?))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => Ok(Variant::Unit(name)),
        _ => Err(format!(
            "derive(Serialize) shim: tuple variant `{name}` is unsupported"
        )),
    }
}
