//! Minimal in-tree stand-in for `criterion` (offline build).
//!
//! Implements the API surface the workspace's benches use — benchmark
//! groups, `bench_function`/`bench_with_input`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros — with
//! plain wall-clock timing: a short warm-up, then `sample_size` timed
//! iterations whose mean is printed. No statistical analysis, outlier
//! rejection, or HTML reports.

use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), 10, None, f);
    }
}

/// Work-rate annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id naming only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates the per-iteration work rate (printed with the timing).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Handed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then one timed call per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        let t0 = Instant::now();
        black_box(routine());
        self.samples.push(t0.elapsed().as_secs_f64());
    }
}

fn run_bench<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{label}: no samples");
        return;
    }
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:.3} Melem/s", n as f64 / mean / 1e6)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  {:.3} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!(
        "{label}: {:.3} ms/iter ({} samples){rate}",
        mean * 1e3,
        b.samples.len()
    );
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.throughput(Throughput::Elements(100));
        let mut count = 0u32;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("with", 3), &3u32, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(count >= 4, "warm-up + timed iterations ran");
    }
}
