//! Minimal in-tree stand-in for `proptest` (offline build).
//!
//! Supports the subset the workspace's property tests use: the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, numeric range strategies, tuple
//! strategies, [`collection::vec`], [`bool::ANY`], [`ProptestConfig`], and
//! the [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Differences from the real crate: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test name), there is **no shrinking**, and
//! `prop_assert*` are plain assertions — a failing case fails the test
//! directly with the assertion message.

use rand::rngs::StdRng;
use rand::{Rng as _, SampleRange, SeedableRng as _};
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for one property test, seeded from the
/// test's name so each test draws an independent, reproducible stream.
pub fn deterministic_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Runner configuration: number of cases per property.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases the runner executes per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then draws from the strategy `f`
    /// builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T> Strategy for Range<T>
where
    Range<T>: SampleRange + Clone,
{
    type Value = <Range<T> as SampleRange>::Output;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange + Clone,
{
    type Value = <RangeInclusive<T> as SampleRange>::Output;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// A strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates vectors of `elem` values with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Uniform boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Draws `true`/`false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<u32>() & 1 == 1
        }
    }
}

/// A boxed, object-safe strategy — the common type [`prop_oneof!`] arms
/// erase to.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> BoxedStrategy<T> {
    /// Boxes any strategy producing `T`.
    pub fn new<S>(s: S) -> Self
    where
        S: Strategy<Value = T> + 'static,
    {
        BoxedStrategy(Box::new(move |rng| s.generate(rng)))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A weighted union of boxed strategies: picks an arm with probability
/// proportional to its weight, then draws from it.
pub struct WeightedUnion<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> WeightedUnion<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u32 = arms.iter().map(|(w, _)| w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        WeightedUnion { arms, total }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// Weighted choice between strategies, like the real crate's `prop_oneof!`:
/// `prop_oneof![2 => a, 1 => b]` draws from `a` twice as often as `b`;
/// weights default to 1 when omitted.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::WeightedUnion::new(vec![
            $(($weight, $crate::BoxedStrategy::new($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1u32 => $strat),+]
    };
}

/// Everything a property test needs: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, WeightedUnion,
    };
}

/// Declares property tests. Each `fn` becomes a `#[test]` running
/// `config.cases` deterministic random cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::deterministic_rng(stringify!($name));
                for __case in 0..__config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test (plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        use rand::RngCore as _;
        let a = crate::deterministic_rng("x").next_u64();
        let b = crate::deterministic_rng("x").next_u64();
        let c = crate::deterministic_rng("y").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(a in 1usize..10, pair in (0i32..5, -3i32..=3)) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((0..5).contains(&pair.0));
            prop_assert!((-3..=3).contains(&pair.1));
        }

        #[test]
        fn map_flat_map_and_vec(
            v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0usize..n, 0..8)),
            b in crate::bool::ANY,
        ) {
            prop_assert!(v.len() < 8);
            prop_assert!(usize::from(b) <= 1);
        }

        #[test]
        fn oneof_draws_from_every_arm(
            picks in crate::collection::vec(
                prop_oneof![3 => (0i32..10).prop_map(|v| v), 1 => Just(99i32)],
                32..33,
            ),
        ) {
            for p in &picks {
                prop_assert!((0..10).contains(p) || *p == 99);
            }
        }
    }
}
