#!/usr/bin/env bash
# Admission-planner benchmark: regenerates BENCH_PR8.json, the committed
# evidence for the cost-model-driven planner — per-matrix simulated kernel
# time under the planner's chosen configuration vs the fixed paper default
# on the mixed rmat/dc2-class workloads (the `plan` criterion bench), plus
# an end-to-end planned trace replay of the serve example (bitwise
# verification against hand-pinned configs, replay determinism, prediction
# accuracy accounting).
#
# Usage: scripts/bench_plan.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build -q --release --example serve
cargo bench -q -p smat-bench --bench plan 2>&1 | tee /tmp/bench_plan_criterion.txt

./target/release/examples/serve --plan --requests 256 --matrices 4 --seed 42 \
    > /tmp/bench_plan_serve.json

python3 - <<'PY'
import json
import re

sim = {}
arms = {}
with open("/tmp/bench_plan_criterion.txt") as f:
    for line in f:
        m = re.match(
            r"plan_sim/(\S+): default=([0-9.]+) ms planned=([0-9.]+) ms "
            r"predicted=([0-9.]+) ms config=(\S+)",
            line.strip(),
        )
        if m:
            sim[m.group(1)] = {
                "default_sim_ms": float(m.group(2)),
                "planned_sim_ms": float(m.group(3)),
                "predicted_ms": float(m.group(4)),
                "planned_config": m.group(5),
            }
        m = re.match(r"plan/(\S+): ([0-9.]+) ms/iter \((\d+) samples\)", line.strip())
        if m:
            arms[m.group(1)] = {"ms_per_iter": float(m.group(2)), "samples": int(m.group(3))}
assert sim, "no plan_sim lines in bench output"
assert any(k.startswith("planned/") for k in arms), f"missing arms: {sorted(arms)}"

# Per-matrix, the planner may tie the default (when the default config is
# its own choice) but the aggregate must not regress: planned throughput
# >= default-config throughput on the mixed workloads.
default_total = sum(r["default_sim_ms"] for r in sim.values())
planned_total = sum(r["planned_sim_ms"] for r in sim.values())
assert planned_total <= default_total * (1.0 + 1e-9), \
    f"planned {planned_total} ms > default {default_total} ms"

serve = json.load(open("/tmp/bench_plan_serve.json"))
assert serve["plan_enabled"], "serve run did not enable the planner"
assert serve["mismatches"] == 0, "planned serving diverged from hand-pinned configs"
assert serve["runs_identical"], "planned replay was not deterministic"
plan = serve["plan"]
assert plan["planned_requests"] > 0 and plan["plan_predictions"] > 0

record = {
    "example": "bench_plan",
    "workloads": sim,
    "criterion": arms,
    "planned_total_sim_ms": planned_total,
    "default_total_sim_ms": default_total,
    "planned_speedup_over_default": default_total / planned_total,
    "serve_planned": {
        "spec": serve["spec"],
        "mismatches": serve["mismatches"],
        "runs_identical": serve["runs_identical"],
        "planned_requests": plan["planned_requests"],
        "plan_predictions": plan["plan_predictions"],
        "plan_mean_rel_error": plan["plan_mean_rel_error"],
        "plan_refits": plan["plan_refits"],
        "plan_observations": plan["plan_observations"],
        "request_mean_rel_error": plan["request_mean_rel_error"],
        "request_max_rel_error": plan["request_max_rel_error"],
    },
}
with open("BENCH_PR8.json", "w") as f:
    json.dump(record, f)

for name, r in sim.items():
    tie = " (tie: planner chose the default)" if r["planned_sim_ms"] == r["default_sim_ms"] else ""
    print(f"{name:<18} default {r['default_sim_ms']:.6f} ms | planned "
          f"{r['planned_sim_ms']:.6f} ms [{r['planned_config']}]{tie}")
print(f"aggregate: planned {planned_total:.6f} ms vs default {default_total:.6f} ms "
      f"({record['planned_speedup_over_default']:.3f}x)")
print(f"end-to-end: {plan['planned_requests']} planned requests, "
      f"mean rel error {plan['plan_mean_rel_error']:.3f}, "
      f"{plan['plan_refits']} refits over {plan['plan_observations']} observations")
print("wrote BENCH_PR8.json")
PY
