#!/usr/bin/env bash
# Sharded-serving benchmark: regenerates BENCH_PR7.json, the committed
# evidence for the two-level scheduler — the criterion `serve_engine` arms
# (direct call, engine submit, chaos recovery, and the new 3-shard fan-out)
# plus an end-to-end sharded trace replay of the serve example (bitwise
# verification, replay determinism, fan-out accounting).
#
# Usage: scripts/bench_shard.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build -q --release --example serve
cargo bench -q -p smat-bench --bench serve_engine 2>&1 | tee /tmp/bench_shard_criterion.txt

./target/release/examples/serve \
    --devices 3 --shard-max-bytes 20000 --large-matrices 2 \
    --requests 256 --matrices 4 --seed 42 \
    > /tmp/bench_shard_serve.json

python3 - <<'PY'
import json
import re

arms = {}
with open("/tmp/bench_shard_criterion.txt") as f:
    for line in f:
        m = re.match(r"serve_engine/(\S+): ([0-9.]+) ms/iter \((\d+) samples\)", line.strip())
        if m:
            arms[m.group(1)] = {"ms_per_iter": float(m.group(2)), "samples": int(m.group(3))}
assert "submit_wait" in arms and "submit_wait_sharded_x3" in arms, f"missing arms: {sorted(arms)}"

serve = json.load(open("/tmp/bench_shard_serve.json"))
assert serve["mismatches"] == 0, "sharded responses diverged from the unbatched reference"
assert serve["runs_identical"], "sharded replay was not deterministic"
assert serve["fanout_requests"] > 0, "no request actually fanned out"
assert serve["shard_subrequests"] >= 3 * serve["fanout_requests"] // 2, \
    "large tenants should split into multiple shards"

record = {
    "example": "bench_shard",
    "criterion": arms,
    "fanout_tax_vs_submit_wait": (
        arms["submit_wait_sharded_x3"]["ms_per_iter"] / arms["submit_wait"]["ms_per_iter"]
    ),
    "serve_sharded": {
        "spec": serve["spec"],
        "devices": serve["devices"],
        "shard_max_bytes": serve["shard_max_bytes"],
        "mismatches": serve["mismatches"],
        "runs_identical": serve["runs_identical"],
        "fanout_requests": serve["fanout_requests"],
        "shard_subrequests": serve["shard_subrequests"],
        "deterministic": serve["deterministic"],
    },
}
with open("BENCH_PR7.json", "w") as f:
    json.dump(record, f)

tax = record["fanout_tax_vs_submit_wait"]
print(f"submit_wait           {arms['submit_wait']['ms_per_iter']:.3f} ms/iter")
print(f"submit_wait_sharded   {arms['submit_wait_sharded_x3']['ms_per_iter']:.3f} ms/iter "
      f"({tax:.2f}x, 3 shards on 3 devices)")
print(f"end-to-end: {serve['fanout_requests']} fan-outs -> "
      f"{serve['shard_subrequests']} sub-requests, 0 mismatches, deterministic replay")
print("wrote BENCH_PR7.json")
PY
