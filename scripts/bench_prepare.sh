#!/usr/bin/env bash
# Prepare-path benchmark: regenerates BENCH_PR5.json, the committed evidence
# for the parallel prepare pipeline — per (matrix, strategy) records with
# reorder_ms / pack_ms / convert_ms / total_prepare_ms / nnz_blocks, plus
# per-matrix LSH-vs-exact speedup and block-count-ratio summaries. The
# rmat-131k entry is the >=100k-row acceptance workload (LSH + parallel
# conversion must beat the exact sequential path by >=5x).
#
# Usage: scripts/bench_prepare.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build -q --release --example prepare_perf
./target/release/examples/prepare_perf > BENCH_PR5.json

python3 - <<'PY'
import json
rec = json.load(open("BENCH_PR5.json"))
for s in rec["summaries"]:
    print(f"{s['matrix']:>12} ({s['rows']} rows): "
          f"lsh+parallel {s['speedup_lsh_parallel_vs_exact_sequential']:.2f}x vs exact+sequential, "
          f"block ratio {s['lsh_block_count_ratio']:.3f}")
big = [s for s in rec["summaries"] if s["rows"] >= 100_000]
assert big, "no >=100k-row acceptance workload in the record"
for s in big:
    assert s["speedup_lsh_parallel_vs_exact_sequential"] >= 5.0, \
        f"{s['matrix']}: speedup below the 5x acceptance bar"
print("wrote BENCH_PR5.json")
PY
