#!/usr/bin/env bash
# Offline repository gate: formatting, lints, tests, and a smoke run of the
# static analyzer CLI on the bundled matrices. No network access required —
# all dependencies are in-tree shims.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> analyzer CLI: clean matrix must pass"
cargo run -q --example analyze -- data/sample.mtx

echo "==> analyzer CLI: corrupt matrix must be rejected (exit 1)"
if cargo run -q --example analyze -- data/corrupt.mtx --format json; then
    echo "error: corrupt.mtx was not rejected" >&2
    exit 1
fi

echo "==> analyzer CLI: oversubscribed schedule must be rejected (exit 1)"
if cargo run -q --example analyze -- data/sample.mtx --device tiny --block 96x96 >/dev/null; then
    echo "error: 96x96 blocks on the tiny device were not rejected" >&2
    exit 1
fi

echo "==> serving engine: trace replay must verify and be deterministic"
cargo build -q --release --example serve
serve_json="$(./target/release/examples/serve --requests 200 2>/dev/null)"
# The example already exits non-zero on any mismatch or replay divergence;
# additionally assert the stats record parses and the registry saw hits.
python3 - "$serve_json" <<'PY'
import json, sys
rec = json.loads(sys.argv[1])
assert rec["mismatches"] == 0, "batched outputs diverged from unbatched runs"
assert rec["runs_identical"] is True, "end state not deterministic across replays"
hits = rec["stats"]["registry"]["hits"]
assert hits >= 1, f"expected at least one registry cache hit, got {hits}"
assert rec["registry_hit_rate"] > 0.9, rec["registry_hit_rate"]
print(f"serve smoke OK: {rec['verified_requests']} requests verified, "
      f"{hits} registry hits (rate {rec['registry_hit_rate']:.3f})")
PY

echo "All checks passed."
