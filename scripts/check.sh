#!/usr/bin/env bash
# Offline repository gate: formatting, lints, tests, and a smoke run of the
# static analyzer CLI on the bundled matrices. No network access required —
# all dependencies are in-tree shims.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> differential conformance suite (formats x reorderings x blocks)"
cargo test -q --test conformance

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --workspace --no-deps

echo "==> analyzer CLI: clean matrix must pass"
cargo run -q --example analyze -- data/sample.mtx

echo "==> analyzer CLI: corrupt matrix must be rejected (exit 1)"
if cargo run -q --example analyze -- data/corrupt.mtx --format json; then
    echo "error: corrupt.mtx was not rejected" >&2
    exit 1
fi

echo "==> analyzer CLI: oversubscribed schedule must be rejected (exit 1)"
if cargo run -q --example analyze -- data/sample.mtx --device tiny --block 96x96 >/dev/null; then
    echo "error: 96x96 blocks on the tiny device were not rejected" >&2
    exit 1
fi

echo "==> serving engine: trace replay must verify and be deterministic"
cargo build -q --release --example serve
serve_json="$(./target/release/examples/serve --requests 200 2>/dev/null)"
# The example already exits non-zero on any mismatch or replay divergence;
# additionally assert the stats record parses and the registry saw hits.
python3 - "$serve_json" <<'PY'
import json, sys
rec = json.loads(sys.argv[1])
assert rec["mismatches"] == 0, "batched outputs diverged from unbatched runs"
assert rec["runs_identical"] is True, "end state not deterministic across replays"
hits = rec["stats"]["registry"]["hits"]
assert hits >= 1, f"expected at least one registry cache hit, got {hits}"
assert rec["registry_hit_rate"] > 0.9, rec["registry_hit_rate"]
print(f"serve smoke OK: {rec['verified_requests']} requests verified, "
      f"{hits} registry hits (rate {rec['registry_hit_rate']:.3f})")
PY

echo "==> chaos smoke: injected faults, zero incorrect responses, reproducible"
chaos_json="$(./target/release/examples/serve --requests 160 --chaos-seed 7 --fault-rate 0.25 2>/dev/null)"
python3 - "$chaos_json" <<'PY'
import json, sys
rec = json.loads(sys.argv[1])
assert rec["mismatches"] == 0, "a faulted response diverged from its unfaulted reference"
assert rec["runs_identical"] is True, "chaos replay not deterministic for a fixed seed"
chaos = rec["deterministic"]["chaos"]
assert chaos["faults_injected"] > 0, f"fault rate 0.25 injected nothing: {chaos}"
assert chaos["retries"] > 0, f"faults without retries: {chaos}"
assert rec["stats"]["failed"] == 0, "a request exhausted the recovery ladder"
print(f"chaos smoke OK: {chaos['faults_injected']} faults "
      f"({chaos['faults_transient']} transient / {chaos['faults_ecc']} ecc / "
      f"{chaos['faults_offline']} offline), {chaos['retries']} retries, "
      f"{chaos['hedges']} hedges, {chaos['breaker_trips']} breaker trips, "
      f"{chaos['degraded_completions']} degraded — all responses correct")
PY

echo "==> shard smoke: sharded replay bitwise-verified, deterministic, sanitize-clean"
# Forces the two large tenants over the shard budget: every request against
# them fans out across the 3-device pool, joins by row concatenation, and
# must still verify bitwise against the unbatched single-handle reference.
shard_json="$(./target/release/examples/serve --requests 128 --devices 3 \
    --shard-max-bytes 20000 --large-matrices 2 --sanitize 2>/dev/null)"
python3 - "$shard_json" <<'PY'
import json, sys
rec = json.loads(sys.argv[1])
assert rec["mismatches"] == 0, "a sharded join diverged from the unsharded reference"
assert rec["runs_identical"] is True, "sharded replay not deterministic"
assert rec["fanout_requests"] > 0, "no request actually fanned out"
assert rec["shard_subrequests"] > rec["fanout_requests"], \
    "fan-outs must produce multiple sub-requests each"
assert rec["sanitize_findings"] == 0, f"C-codes fired: {rec['sanitize_codes']}"
disp = [d["dispatched"] for d in rec["stats"]["devices"]]
comp = [d["completed"] for d in rec["stats"]["devices"]]
assert disp == comp, f"lost sub-requests: dispatched {disp} vs completed {comp}"
assert all(d > 0 for d in disp), f"a device sat idle under fan-out: {disp}"
print(f"shard smoke OK: {rec['fanout_requests']} fan-outs -> "
      f"{rec['shard_subrequests']} sub-requests across {len(disp)} devices, "
      f"0 mismatches, deterministic, lock-order clean")
PY

echo "==> plan smoke: planned replay bitwise-verified, predictions graded, sanitize-clean"
# --plan routes every registration through the cost-model-driven admission
# planner; the example verifies planned serving bitwise against references
# prepared under the same decisions chosen manually, and grades every
# prediction against the launch it planned.
plan_json="$(./target/release/examples/serve --requests 128 --plan --sanitize 2>/dev/null)"
python3 - "$plan_json" <<'PY'
import json, math, sys
rec = json.loads(sys.argv[1])
assert rec["plan_enabled"] is True
assert rec["mismatches"] == 0, "a planned response diverged from its hand-pinned reference"
assert rec["runs_identical"] is True, "planned replay not deterministic"
assert rec["sanitize_findings"] == 0, f"C-codes fired: {rec['sanitize_codes']}"
plan = rec["plan"]
assert plan["planned_requests"] > 0, "no request ran under a planner-chosen config"
assert plan["plan_predictions"] > 0, "no prediction was graded against a launch"
assert math.isfinite(plan["plan_mean_rel_error"]), plan["plan_mean_rel_error"]
assert plan["request_checks"] > 0 and math.isfinite(plan["request_mean_rel_error"])
assert plan["decisions"], "no admission decisions were recorded"
print(f"plan smoke OK: {plan['planned_requests']} planned requests, "
      f"{plan['plan_predictions']} predictions graded "
      f"(mean rel error {plan['plan_mean_rel_error']:.3f}), "
      f"{plan['plan_refits']} refits over {plan['plan_observations']} observations")
PY

echo "==> mutate smoke: dynamic matrices, zero stale-plan launches, deterministic"
# --mutate-rate makes the tenants dynamic: every mutation bumps the overlay
# epoch, every response is verified against a reference handle mutated in
# lockstep (a stale-plan launch would mismatch), and the second replay must
# reproduce the end state byte-for-byte — compaction swaps included.
mutate_json="$(./target/release/examples/serve --requests 256 --mutate-rate 0.5 \
    --sanitize 2>/dev/null)"
python3 - "$mutate_json" <<'PY'
import json, sys
rec = json.loads(sys.argv[1])
assert rec["mutations_applied"] > 0, "mutation schedule was empty"
assert rec["mismatches"] == 0, \
    "a response diverged from its epoch reference (stale plan or lost update)"
assert rec["runs_identical"] is True, "mutating replay not deterministic"
assert rec["sanitize_findings"] == 0, f"C-codes fired: {rec['sanitize_codes']}"
det = rec["deterministic"]
assert det["mutations"] == rec["mutations_applied"], det["mutations"]
assert det["compactions"] >= 1, \
    f"the structural trigger never fired a background compaction: {det['compactions']}"
print(f"mutate smoke OK: {det['mutations']} mutations, "
      f"{det['compactions']} background compactions, 0 stale-plan launches, "
      f"deterministic double-replay, lock-order clean")
PY

echo "==> mutate smoke: naive re-prepare mode is bitwise-identical to overlay serving"
naive_json="$(./target/release/examples/serve --requests 256 --mutate-rate 0.5 \
    --naive-update 2>/dev/null)"
python3 - "$mutate_json" "$naive_json" <<'PY'
import json, sys
overlay, naive = (json.loads(a) for a in sys.argv[1:3])
assert naive["mismatches"] == 0 and naive["runs_identical"] is True
a = overlay["deterministic"]["output_checksum"]
b = naive["deterministic"]["output_checksum"]
assert a == b, f"overlay serving diverged from re-prepare-per-update: {a} vs {b}"
print(f"naive-mode smoke OK: checksum {a} identical across both update strategies")
PY

echo "==> sanitize: raw std::sync primitives are banned in crates/serve"
# Every lock/condvar in the serving engine must be a checked smat-sanitize
# primitive so the lock-order engine and the model checker see it. The shim
# lives in crates/sanitize/src/sync.rs; OnceLock, Barrier, and std atomics
# without protocol roles stay allowed.
if grep -rnE 'std::sync::(Mutex|RwLock|Condvar)' crates/serve/src; then
    echo "error: raw std::sync lock in crates/serve — use smat_sanitize::sync" >&2
    exit 1
fi

echo "==> sanitize: model checker must pass the serve protocols and fail the fixtures"
cargo test -q -p smat-sanitize --test model_fixtures
cargo test -q -p smat-serve --test model_check

echo "==> sanitize: lock-order smoke over the serving engine (zero C-codes)"
sanitize_json="$(./target/release/examples/serve --requests 96 --warm-prepare --sanitize 2>/dev/null)"
python3 - "$sanitize_json" <<'PY'
import json, sys
rec = json.loads(sys.argv[1])
assert rec["sanitize_enabled"] is True
assert rec["sanitize_findings"] == 0, f"C-codes fired: {rec['sanitize_codes']}"
print("sanitize smoke OK: lock-order graph clean across both replays")
PY

echo "==> prepare-path smoke: parallel BCSR bitwise-identical, LSH quality in tolerance"
cargo build -q --release --example prepare_perf
./target/release/examples/prepare_perf --smoke

echo "==> tracing: serve --trace must emit a valid Chrome trace"
trace_file="$(mktemp /tmp/smat_trace.XXXXXX.json)"
trap 'rm -f "$trace_file"' EXIT
./target/release/examples/serve --requests 64 --trace "$trace_file" >/dev/null 2>&1
python3 - "$trace_file" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "trace is empty"
names = {e["name"] for e in events}
# One span per serving lifecycle stage, plus pipeline + simulator coverage.
for required in ("admission", "queue_wait", "batch_form", "launch",
                 "complete", "prepare", "kernel_execute"):
    assert required in names, f"missing lifecycle span '{required}'"
cats = {e.get("cat") for e in events}
assert "sim" in cats, "no simulated-device events in trace"
for e in events:
    if e.get("ph") != "M":  # metadata events carry no timestamp
        assert isinstance(e["ts"], (int, float)) and e["ts"] >= 0, e
print(f"trace smoke OK: {len(events)} events, "
      f"{len(names)} distinct names, categories {sorted(c for c in cats if c)}")
PY

echo "All checks passed."
