#!/usr/bin/env bash
# Offline repository gate: formatting, lints, tests, and a smoke run of the
# static analyzer CLI on the bundled matrices. No network access required —
# all dependencies are in-tree shims.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> analyzer CLI: clean matrix must pass"
cargo run -q --example analyze -- data/sample.mtx

echo "==> analyzer CLI: corrupt matrix must be rejected (exit 1)"
if cargo run -q --example analyze -- data/corrupt.mtx --format json; then
    echo "error: corrupt.mtx was not rejected" >&2
    exit 1
fi

echo "==> analyzer CLI: oversubscribed schedule must be rejected (exit 1)"
if cargo run -q --example analyze -- data/sample.mtx --device tiny --block 96x96 >/dev/null; then
    echo "error: 96x96 blocks on the tiny device were not rejected" >&2
    exit 1
fi

echo "All checks passed."
