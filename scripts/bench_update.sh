#!/usr/bin/env bash
# Dynamic-matrix benchmark: regenerates BENCH_PR9.json, the committed
# evidence for the COO delta overlay — overlay serving (mutations accumulate
# on the prepared handle, background compaction folds them in when the cost
# model says so) vs the naive strawman that re-prepares and re-registers the
# merged matrix after every update. Both arms replay the identical mutating
# Zipf trace, verify bitwise against references mutated in lockstep, and
# must end on the same output checksum — the speedup is pure T_init
# amortization, not a different answer.
#
# Usage: scripts/bench_update.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build -q --release --example serve

# Heavy arm: one mutation per request on 384-dim tenants makes the naive
# strawman pay ~192 full re-preparations where overlay serving pays four.
common=(--requests 192 --size 384 --mutate-rate 1.0 --seed 42)
./target/release/examples/serve "${common[@]}" > /tmp/bench_update_overlay.json
./target/release/examples/serve "${common[@]}" --naive-update > /tmp/bench_update_naive.json

# Compaction arm: the default-scale mutating trace where the structural
# trigger actually fires background compactions mid-replay.
./target/release/examples/serve --requests 256 --mutate-rate 0.5 --seed 42 \
    > /tmp/bench_update_compact.json

python3 - <<'PY'
import json

overlay = json.load(open("/tmp/bench_update_overlay.json"))
naive = json.load(open("/tmp/bench_update_naive.json"))
compact = json.load(open("/tmp/bench_update_compact.json"))

for name, rec in [("overlay", overlay), ("naive", naive), ("compact", compact)]:
    assert rec["mismatches"] == 0, f"{name}: a response diverged from its epoch reference"
    assert rec["runs_identical"], f"{name}: replay not deterministic"
    assert rec["mutations_applied"] > 0, f"{name}: no mutations were scheduled"

# Same trace, same mutations, same answers: the two update strategies must
# agree bitwise before their costs are worth comparing.
a = overlay["deterministic"]["output_checksum"]
b = naive["deterministic"]["output_checksum"]
assert a == b, f"overlay vs naive checksum mismatch: {a} vs {b}"

ow = overlay["stats"]["wall_ms"]
nw = naive["stats"]["wall_ms"]
op = overlay["deterministic"]["registry_prepares"]
np_ = naive["deterministic"]["registry_prepares"]
assert np_ > op, f"naive mode must re-prepare per update: {np_} vs {op} prepares"
assert ow < nw, \
    f"overlay serving must beat re-prepare-per-update: {ow:.1f} ms vs {nw:.1f} ms"

assert compact["deterministic"]["compactions"] >= 1, \
    "the compaction arm never triggered a background re-prepare"

requests = overlay["verified_requests"]
record = {
    "example": "bench_update",
    "spec": overlay["spec"],
    "mutations_applied": overlay["mutations_applied"],
    "overlay": {
        "wall_ms": ow,
        "prepares": op,
        "compactions": overlay["deterministic"]["compactions"],
        "requests_per_s": requests / (ow / 1000.0),
    },
    "naive_reprepare": {
        "wall_ms": nw,
        "prepares": np_,
        "requests_per_s": requests / (nw / 1000.0),
    },
    "overlay_speedup_over_naive": nw / ow,
    "checksums_identical": True,
    "compaction_arm": {
        "spec": compact["spec"],
        "mutations": compact["deterministic"]["mutations"],
        "compactions": compact["deterministic"]["compactions"],
        "runs_identical": compact["runs_identical"],
    },
}
with open("BENCH_PR9.json", "w") as f:
    json.dump(record, f)

print(f"overlay:        {ow:10.1f} ms wall, {op:4d} prepares, "
      f"{record['overlay']['requests_per_s']:.1f} req/s")
print(f"naive re-prep:  {nw:10.1f} ms wall, {np_:4d} prepares, "
      f"{record['naive_reprepare']['requests_per_s']:.1f} req/s")
print(f"overlay serving is {record['overlay_speedup_over_naive']:.2f}x faster on the "
      f"mutating Zipf trace ({overlay['mutations_applied']} updates), same checksum")
print(f"compaction arm: {record['compaction_arm']['compactions']} background "
      f"compactions over {record['compaction_arm']['mutations']} mutations, deterministic")
print("wrote BENCH_PR9.json")
PY
