//! Thread-count determinism of the parallel prepare pipeline.
//!
//! The parallel BCSR conversion and the LSH Jaccard reordering both fan
//! work out over the rayon shim. Their contract is that the worker count
//! is a pure *throughput* knob: the produced structures must be bitwise
//! identical whether the pool runs 1, 2, or 8 threads (the shim chunks
//! inputs contiguously and concatenates per-chunk outputs in index order,
//! and the LSH bucket construction is a sequential row scan downstream of
//! the data-parallel signature pass). This is what makes
//! `RAYON_NUM_THREADS` safe to vary between a trace capture and its
//! replay.
//!
//! The whole sweep lives in one test function because the thread-count
//! override is process-global state.

use smat_repro::formats::{Bcsr, Csr, Permutation, F16};
use smat_repro::reorder::{jaccard_lsh_row_permutation, JaccardLshParams};

/// A mid-sized power-law matrix: enough rows to split into many chunks,
/// heavy columns to exercise the LSH bucket pruning.
fn matrix() -> Csr<F16> {
    smat_repro::workloads::rmat::<F16>(9, 6_000, 7)
}

fn bcsr_at(threads: usize, a: &Csr<F16>) -> Bcsr<F16> {
    rayon::set_num_threads(threads);
    let b = Bcsr::from_csr_parallel(a, 16, 16);
    rayon::set_num_threads(0);
    b
}

fn lsh_at(threads: usize, a: &Csr<F16>, params: &JaccardLshParams) -> Permutation {
    rayon::set_num_threads(threads);
    let p = jaccard_lsh_row_permutation(a, params);
    rayon::set_num_threads(0);
    p
}

#[test]
fn parallel_prepare_is_bitwise_identical_at_1_2_and_8_threads() {
    let a = matrix();
    assert!(a.nnz() > 1_000, "generator sanity: nnz = {}", a.nnz());

    let bcsr1 = bcsr_at(1, &a);
    for threads in [2, 8] {
        let b = bcsr_at(threads, &a);
        assert_eq!(
            b, bcsr1,
            "Bcsr::from_csr_parallel diverged at {threads} threads"
        );
    }

    let params = JaccardLshParams::default();
    let perm1 = lsh_at(1, &a, &params);
    for threads in [2, 8] {
        let p = lsh_at(threads, &a, &params);
        assert_eq!(
            p, perm1,
            "jaccard_lsh_row_permutation diverged at {threads} threads"
        );
    }

    // The single-thread run equals the plain sequential conversion, so the
    // whole family collapses to one canonical result.
    assert_eq!(bcsr1, Bcsr::from_csr(&a, 16, 16));
}
