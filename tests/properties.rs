//! Property-based tests (proptest) on the cross-crate invariants: format
//! conversion roundtrips, Eq. (2) block bounds, permutation algebra, and
//! kernel-vs-reference agreement on arbitrary matrices and configurations.

use proptest::prelude::*;
use smat::{AccumMode, MatrixUpdate, OptFlags, PlanSpace, Planner, Smat, SmatConfig};
use smat_formats::{Bcsr, Coo, Csr, Dense, Element, Permutation, SrBcrs, F16};
use smat_reorder::{reorder, ReorderAlgorithm};

/// Strategy: a sparse matrix as (rows, cols, entries with small-int values).
fn sparse_matrix() -> impl Strategy<Value = Csr<F16>> {
    (1usize..60, 1usize..60).prop_flat_map(|(r, c)| {
        proptest::collection::vec(((0..r), (0..c), -4i32..=4), 0..200).prop_map(move |entries| {
            let mut coo = Coo::new(r, c);
            for (i, j, v) in entries {
                if v != 0 {
                    coo.push(i, j, F16::from_f64(v as f64));
                }
            }
            coo.to_csr()
        })
    })
}

fn rhs(k: usize, n: usize) -> Dense<F16> {
    Dense::from_fn(k, n, |i, j| {
        F16::from_f64(((i * 3 + j * 5) % 7) as f64 - 3.0)
    })
}

/// Every reordering algorithm, with `tau` driving the thresholded ones.
fn all_reorder_algorithms(tau: f64) -> [ReorderAlgorithm; 9] {
    [
        ReorderAlgorithm::Identity,
        ReorderAlgorithm::JaccardRows { tau },
        ReorderAlgorithm::JaccardRowsCols { tau },
        ReorderAlgorithm::JaccardLsh {
            tau,
            bands: 8,
            rows_per_band: 1,
        },
        ReorderAlgorithm::ReverseCuthillMcKee,
        ReorderAlgorithm::Saad { tau },
        ReorderAlgorithm::GrayCode,
        ReorderAlgorithm::Bisection,
        ReorderAlgorithm::DegreeSort,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bcsr_roundtrips_csr(a in sparse_matrix(), h in 1usize..20, w in 1usize..20) {
        let bcsr = Bcsr::from_csr(&a, h, w);
        prop_assert_eq!(bcsr.to_csr(), a);
    }

    #[test]
    fn bcsr_block_count_within_eq2_bounds(a in sparse_matrix(), h in 1usize..20, w in 1usize..20) {
        let bcsr = Bcsr::from_csr(&a, h, w);
        let (lo, hi) = bcsr.block_count_bounds();
        prop_assert!(lo <= bcsr.nblocks());
        prop_assert!(bcsr.nblocks() <= hi.max(1) || bcsr.nblocks() == 0);
        // Padding accounting is consistent.
        prop_assert_eq!(
            bcsr.padding() + bcsr.nnz(),
            bcsr.nblocks() * h * w
        );
    }

    #[test]
    fn srbcrs_roundtrips_csr(a in sparse_matrix(), v in 1usize..12, s in 1usize..8) {
        let sr = SrBcrs::from_csr(&a.cast::<i16>(), v, s);
        prop_assert_eq!(sr.to_csr(), a.cast::<i16>());
    }

    #[test]
    fn transpose_is_involutive(a in sparse_matrix()) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn dense_roundtrip(a in sparse_matrix()) {
        prop_assert_eq!(Csr::from_dense(&a.to_dense()), a);
    }

    #[test]
    fn dense_split_rows_vconcat_roundtrips(
        a in sparse_matrix(),
        cuts in proptest::collection::vec(0usize..60, 0..5),
    ) {
        // split∘vconcat is bitwise: the sharded join relies on this.
        let d = a.to_dense();
        let mut heights = Vec::new();
        let mut left = d.nrows();
        for c in cuts {
            let h = c % (left + 1);
            heights.push(h);
            left -= h;
        }
        heights.push(left);
        let parts = d.split_rows(&heights);
        let refs: Vec<&Dense<F16>> = parts.iter().collect();
        prop_assert_eq!(Dense::vconcat(&refs), d);
    }

    #[test]
    fn csr_slice_rows_reassembles_and_preserves_products(
        a in sparse_matrix(),
        cut_seed in 0usize..1000,
    ) {
        // Slicing rows then multiplying each slice gives exactly the rows of
        // the full product — the invariant that makes 1D sharding exact.
        let mid = cut_seed % (a.nrows() + 1);
        let top = a.slice_rows(0, mid);
        let bottom = a.slice_rows(mid, a.nrows());
        prop_assert_eq!(top.nnz() + bottom.nnz(), a.nnz());
        let b = rhs(a.ncols(), 4);
        let full = a.spmm_reference(&b);
        let joined = Dense::vconcat(&[
            &top.spmm_reference(&b),
            &bottom.spmm_reference(&b),
        ]);
        prop_assert_eq!(joined, full);
    }

    #[test]
    fn row_permutation_commutes_with_spmm(a in sparse_matrix(), seed in 0u64..1000) {
        // (P·A)·B == P·(A·B) — the algebraic basis of SMaT's preprocessing.
        let n = a.nrows();
        let perm = {
            let mut idx: Vec<usize> = (0..n).collect();
            // Simple seeded shuffle.
            let mut state = seed.wrapping_add(1);
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                idx.swap(i, j);
            }
            Permutation::from_vec(idx)
        };
        let b = rhs(a.ncols(), 4);
        let lhs = a.permute_rows(&perm).spmm_reference(&b);
        let rhs_ = a.spmm_reference(&b).select_rows(perm.as_slice());
        prop_assert_eq!(lhs, rhs_);
    }

    #[test]
    fn every_reorder_algorithm_returns_a_bijection(a in sparse_matrix(), tau in 0.1f64..0.95) {
        for alg in all_reorder_algorithms(tau) {
            let r = reorder(&a, alg, 8, 8);
            // Permutation::from_vec inside reorder validates bijectivity;
            // check the shape and inverse algebra explicitly anyway, plus
            // that the permuted matrix preserves the nnz multiset.
            prop_assert_eq!(r.row_perm.len(), a.nrows());
            prop_assert!(r.row_perm.then(&r.row_perm.inverse()).is_identity());
            if let Some(cp) = &r.col_perm {
                prop_assert_eq!(cp.len(), a.ncols());
                prop_assert!(cp.then(&cp.inverse()).is_identity());
            }
            let pm = r.apply(&a);
            prop_assert_eq!(pm.nnz(), a.nnz());
            let mut h1 = a.row_nnz_histogram();
            let mut h2 = pm.row_nnz_histogram();
            h1.sort_unstable();
            h2.sort_unstable();
            if r.col_perm.is_none() {
                prop_assert_eq!(h1, h2);
            }
        }
    }

    #[test]
    fn every_reorder_algorithm_preserves_the_product(
        a in sparse_matrix(), tau in 0.1f64..0.95, n in 1usize..8
    ) {
        // (P·A·Qᵀ)·(Q·B) == P·(A·B): multiplying the reordered matrix by
        // the correspondingly permuted RHS gives the original product with
        // its rows shuffled by P — bitwise, since reordering moves values
        // without touching them and the reference accumulates in f64.
        let b = rhs(a.ncols(), n);
        let want = a.spmm_reference(&b);
        for alg in all_reorder_algorithms(tau) {
            let r = reorder(&a, alg, 8, 8);
            let b_eff = match &r.col_perm {
                Some(cp) => b.select_rows(cp.as_slice()),
                None => b.clone(),
            };
            let lhs = r.apply(&a).spmm_reference(&b_eff);
            prop_assert_eq!(
                lhs,
                want.select_rows(r.row_perm.as_slice()),
                "alg {}", alg.name()
            );
        }
    }

    #[test]
    fn smat_equals_reference_for_arbitrary_matrices(
        a in sparse_matrix(),
        n in 1usize..12,
        tc in proptest::bool::ANY,
        bcsr_iter in proptest::bool::ANY,
        async_copy in proptest::bool::ANY,
    ) {
        let b = rhs(a.ncols(), n);
        let cfg = SmatConfig {
            opts: OptFlags { tc, bcsr_iter, async_copy },
            ..SmatConfig::default()
        };
        let run = Smat::prepare(&a, cfg).spmm(&b);
        prop_assert_eq!(run.c, a.spmm_reference(&b));
    }

    #[test]
    fn narrow_accumulation_is_close_to_wide(a in sparse_matrix()) {
        // Narrow (f16) accumulation may differ from wide, but only within
        // the rounding error bound of the row sums involved.
        let b = rhs(a.ncols(), 4);
        let mk = |accum| SmatConfig { accum, ..SmatConfig::default() };
        let wide = Smat::prepare(&a, mk(AccumMode::Wide)).spmm(&b).c;
        let narrow = Smat::prepare(&a, mk(AccumMode::Narrow)).spmm(&b).c;
        // Max possible |row sum| here: nnz_row * 4 * 3; f16 relative error
        // per rounding step ~2^-11, with at most nblocks_row steps.
        let bound = a.nrows().max(1) as f64 * 16.0; // generous analytic bound
        prop_assert!(wide.max_abs_diff(&narrow) <= bound);
    }

    #[test]
    fn permutation_inverse_roundtrip(seed in 0u64..10_000, n in 1usize..100) {
        let mut idx: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_add(7);
        for i in (1..n).rev() {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let j = (state >> 32) as usize % (i + 1);
            idx.swap(i, j);
        }
        let p = Permutation::from_vec(idx);
        let data: Vec<usize> = (100..100 + n).collect();
        let restored = p.inverse().apply(&p.apply(&data));
        prop_assert_eq!(restored, data);
        prop_assert!(p.then(&p.inverse()).is_identity());
    }

    #[test]
    fn f16_f32_conversion_roundtrips_representable(bits in 0u16..=0xffff) {
        let h = F16::from_bits(bits);
        if !h.is_nan() {
            // f16 -> f32 -> f16 must be the identity on non-NaN values.
            prop_assert_eq!(F16::from_f32(h.to_f32()).to_bits(), bits);
        } else {
            prop_assert!(F16::from_f32(h.to_f32()).is_nan());
        }
    }

    #[test]
    fn f16_conversion_is_monotone(a in -60000.0f32..60000.0, b in -60000.0f32..60000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mtx_roundtrip_preserves_matrix(a in sparse_matrix()) {
        let mut buf = Vec::new();
        smat_formats::mtx::write_csr(&a, &mut buf).unwrap();
        let back: Csr<F16> =
            smat_formats::mtx::read_csr_str(std::str::from_utf8(&buf).unwrap()).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn column_permutation_roundtrips(a in sparse_matrix(), seed in 0u64..500) {
        let m = a.ncols();
        let mut idx: Vec<usize> = (0..m).collect();
        let mut state = seed.wrapping_add(3);
        for i in (1..m).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            idx.swap(i, j);
        }
        let p = Permutation::from_vec(idx);
        prop_assert_eq!(a.permute_cols(&p).permute_cols(&p.inverse()), a);
    }

    #[test]
    fn srbcrs_padding_accounting_is_consistent(
        a in sparse_matrix(), v in 1usize..10, s in 1usize..6
    ) {
        let sr = SrBcrs::from_csr(&a.cast::<i16>(), v, s);
        prop_assert_eq!(sr.padding() + sr.nnz(), sr.nvectors() * sr.vec_len());
        // Every panel's vector count is stride-aligned.
        for p in 0..sr.npanels() {
            prop_assert_eq!(sr.vectors_in_panel(p) % s, 0);
        }
        // Real vectors never exceed total vectors.
        prop_assert!(sr.nvectors_real() <= sr.nvectors());
    }

    #[test]
    fn f16_addition_is_commutative_and_negation_exact(
        a in -1000i32..1000, b in -1000i32..1000
    ) {
        let x = F16::from_f64(a as f64 / 8.0);
        let y = F16::from_f64(b as f64 / 8.0);
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(-(-x), x);
        prop_assert_eq!((x - x).to_f32(), 0.0);
    }

    #[test]
    fn smat_axpby_linearity(a in sparse_matrix(), alpha in -4i32..=4, beta in -4i32..=4) {
        // alpha.(A.B) + beta.C computed by the fused epilogue equals the
        // hand-combined value (both with one final rounding).
        let b = rhs(a.ncols(), 4);
        let c0 = Dense::from_fn(a.nrows(), 4, |i, j| {
            F16::from_f64(((i + j) % 3) as f64)
        });
        let engine = Smat::prepare(&a, SmatConfig::default());
        let run = engine.spmm_axpby(&b, &c0, alpha as f64, beta as f64);
        let prod = a.spmm_reference(&b);
        let want = Dense::from_fn(a.nrows(), 4, |i, j| {
            F16::from_f64(
                alpha as f64 * prod.get(i, j).to_f64()
                    + beta as f64 * c0.get(i, j).to_f64(),
            )
        });
        prop_assert_eq!(run.c, want);
    }

    #[test]
    fn all_five_engines_agree_on_arbitrary_matrices(a in sparse_matrix(), n in 1usize..10) {
        use smat_baselines::{CusparseLike, DaspLike, MagicubeLike, SputnikLike};
        let gpu = smat_gpusim::Gpu::a100();
        let b = rhs(a.ncols(), n);
        let want = a.spmm_reference(&b);
        prop_assert_eq!(&Smat::prepare(&a, SmatConfig::default()).spmm(&b).c, &want);
        prop_assert_eq!(&CusparseLike::new(&gpu, &a).spmm(&b).unwrap().1, &want);
        prop_assert_eq!(&DaspLike::new(&gpu, &a).spmm(&b).unwrap().1, &want);
        prop_assert_eq!(&MagicubeLike::new(&gpu, &a).spmm(&b).unwrap().1, &want);
        prop_assert_eq!(&SputnikLike::new(&gpu, &a).spmm(&b).unwrap().1, &want);
    }

    #[test]
    fn ell_roundtrips_and_multiplies(a in sparse_matrix()) {
        let e = smat_formats::Ell::from_csr(&a);
        prop_assert_eq!(e.to_csr(), a.clone());
        let b = rhs(a.ncols(), 3);
        prop_assert_eq!(e.spmm_reference(&b), a.spmm_reference(&b));
        prop_assert_eq!(e.padding() + e.nnz(), e.nrows() * e.width());
    }

    #[test]
    fn bisection_is_always_a_valid_permutation(a in sparse_matrix()) {
        let r = reorder(&a, ReorderAlgorithm::Bisection, 8, 8);
        prop_assert_eq!(r.row_perm.len(), a.nrows());
        prop_assert_eq!(r.apply(&a).nnz(), a.nnz());
    }
}

/// One step of an arbitrary dynamic-matrix schedule: either a cell
/// mutation (insert/update/delete, encoded by `value`: 0 = delete) or an
/// SpMM query at some RHS width.
#[derive(Clone, Debug)]
enum DynStep {
    Mutate { row: usize, col: usize, value: i32 },
    Query { n: usize },
}

fn dyn_schedule() -> impl Strategy<Value = Vec<DynStep>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0usize..1_000_000, 0usize..1_000_000, -3i32..=3).prop_map(|(r, c, v)| {
                DynStep::Mutate { row: r, col: c, value: v }
            }),
            1 => (1usize..8).prop_map(|n| DynStep::Query { n }),
        ],
        1..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_update_query_interleaving_matches_a_from_scratch_rebuild(
        a in sparse_matrix(),
        schedule in dyn_schedule(),
    ) {
        // The dynamic-matrix contract: after ANY interleaving of cell
        // mutations and SpMM queries, (1) every query against the overlayed
        // handle is bitwise identical to a handle prepared from scratch at
        // the same epoch, and (2) the epoch counts mutations exactly. The
        // mutation coordinates are drawn from the full usize range and
        // folded into bounds here, so occupied cells, holes, and repeat
        // hits of the same cell all occur.
        let smat = Smat::prepare(&a, SmatConfig::default());
        let mut cells: std::collections::BTreeMap<(usize, usize), f64> =
            std::collections::BTreeMap::new();
        let mut applied = 0u64;
        for step in &schedule {
            match *step {
                DynStep::Mutate { row, col, value } => {
                    let (row, col) = (row % a.nrows(), col % a.ncols());
                    let op: MatrixUpdate<F16> = if value == 0 {
                        MatrixUpdate::Delete { row, col }
                    } else {
                        MatrixUpdate::Update {
                            row,
                            col,
                            value: F16::from_f64(value as f64),
                        }
                    };
                    applied += 1;
                    prop_assert_eq!(
                        smat.apply_updates(std::slice::from_ref(&op)),
                        applied,
                        "epoch must count mutations"
                    );
                    cells.insert((row, col), value as f64);
                }
                DynStep::Query { n } => {
                    let b = rhs(a.ncols(), n);
                    let overrides: Vec<(usize, usize, f64)> =
                        cells.iter().map(|(&(r, c), &v)| (r, c, v)).collect();
                    let merged = Coo::with_overrides(&a, &overrides).to_csr();
                    let rebuilt = Smat::prepare(&merged, SmatConfig::default());
                    prop_assert_eq!(
                        smat.spmm(&b).c,
                        rebuilt.spmm(&b).c,
                        "overlayed product diverged from the epoch-{} rebuild",
                        applied
                    );
                    prop_assert_eq!(smat.spmm(&b).c, merged.spmm_reference(&b));
                }
            }
        }
        prop_assert_eq!(smat.overlay_epoch(), applied);
        // Terminal check even if the schedule ended on a mutation: the
        // compaction operand equals the override merge.
        let overrides: Vec<(usize, usize, f64)> =
            cells.iter().map(|(&(r, c), &v)| (r, c, v)).collect();
        prop_assert_eq!(
            smat.merged_csr().to_dense(),
            Coo::with_overrides(&a, &overrides).to_csr().to_dense()
        );
    }
}

/// One calibration shared by every planner property case: fitting is
/// deterministic, so this keeps the cases fast without making them depend
/// on each other.
fn shared_calibration() -> smat::Calibration {
    use std::sync::OnceLock;
    static CAL: OnceLock<smat::Calibration> = OnceLock::new();
    *CAL.get_or_init(|| {
        smat::Calibration::fit_on(
            &smat_workloads::calibration_bands::<F16>(96),
            8,
            &SmatConfig::default(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn planner_decisions_stay_in_space_and_conform(
        a in sparse_matrix(), n in 1usize..12
    ) {
        // The calibrated planner, on an arbitrary matrix: its decision must
        // come from the declared space, carry a usable prediction, count
        // blocks exactly as the prepare it induces, and the pipeline it
        // picks must stay bitwise-exact.
        let base = SmatConfig::default();
        let planner = Planner::with_calibration(PlanSpace::default(), shared_calibration());
        let d = planner.decide(&a, n, &base);
        prop_assert!(
            planner.space().block_shapes.contains(&(d.block_h, d.block_w))
        );
        prop_assert!(planner.space().reorderings.contains(&d.reorder));
        prop_assert!(
            d.predicted_ms.is_finite() && d.predicted_ms > 0.0,
            "prediction must be finite and positive: {}", d.predicted_ms
        );
        prop_assert!(
            planner
                .predict(d.use_tc, d.n_e, n)
                .is_some_and(|p| p == d.predicted_ms),
            "recorded prediction must reproduce from (mode, n_e, width)"
        );

        // Deciding again is bitwise the same decision: admission planning
        // may not introduce nondeterminism into the serving path.
        let d2 = planner.decide(&a, n, &base);
        prop_assert_eq!((d.block_h, d.block_w), (d2.block_h, d2.block_w));
        prop_assert_eq!(d.reorder, d2.reorder);
        prop_assert_eq!(d.use_tc, d2.use_tc);
        prop_assert_eq!(d.n_e, d2.n_e);
        prop_assert_eq!(d.predicted_ms.to_bits(), d2.predicted_ms.to_bits());

        let engine = Smat::prepare_with_plan(&a, d.apply(&base), d);
        prop_assert_eq!(
            engine.bcsr().nblocks(), d.n_e,
            "the decision's n_e must equal the blocks the prepare builds"
        );
        let b = rhs(a.ncols(), n);
        prop_assert_eq!(engine.spmm(&b).c, a.spmm_reference(&b));
    }

    #[test]
    fn planner_observations_never_corrupt_the_calibration(
        a in sparse_matrix(),
        times in proptest::collection::vec(0.001f64..10.0, 1..12),
        same_x in proptest::bool::ANY,
    ) {
        // Feeding any stream of observed launch times — including bursts
        // with zero x-spread, which must be rejected by the identifiability
        // guard rather than fitted — leaves the planner with a finite,
        // positive prediction for every matrix.
        let base = SmatConfig::default();
        let planner = Planner::with_calibration(PlanSpace::default(), shared_calibration());
        let d = planner.decide(&a, 8, &base);
        for (i, t) in times.iter().enumerate() {
            let n_e = if same_x { d.n_e.max(1) } else { d.n_e.max(1) + i * 7 };
            planner.observe(d.use_tc, n_e, 8, *t);
        }
        prop_assert_eq!(planner.observations(), times.len() as u64);
        let after = planner.decide(&a, 8, &base);
        prop_assert!(
            after.predicted_ms.is_finite(),
            "prediction after refits: {}", after.predicted_ms
        );
        let cal = planner.calibration().expect("calibrated planner stays calibrated");
        prop_assert!(cal.tc.t_e_ms.is_finite() && cal.scalar.t_e_ms.is_finite());
        prop_assert!(cal.tc.t_init_ms.is_finite() && cal.scalar.t_init_ms.is_finite());
    }
}
