//! Integration tests of the simulated-device behaviour: determinism,
//! resource errors, and the performance *shapes* the paper reports (who
//! wins where) — the claims EXPERIMENTS.md quantifies.

use smat_formats::Csr;
use smat_gpusim::{Gpu, SimError};
use smat_reorder::ReorderAlgorithm;
use smat_repro::baselines::{CublasLike, CusparseLike, DaspLike, MagicubeLike};
use smat_repro::prelude::*;
use smat_repro::workloads;

#[test]
fn simulation_is_deterministic() {
    let a = workloads::random_uniform::<F16>(150, 150, 0.92, 1);
    let b = workloads::dense_b::<F16>(150, 8);
    let run1 = Smat::prepare(&a, SmatConfig::default()).spmm(&b);
    let run2 = Smat::prepare(&a, SmatConfig::default()).spmm(&b);
    assert_eq!(run1.c, run2.c);
    assert_eq!(run1.report.elapsed_ms(), run2.report.elapsed_ms());
    assert_eq!(run1.report.launch.totals, run2.report.launch.totals);
}

#[test]
fn smat_beats_cusparse_on_blockable_mesh() {
    // The paper's core claim at N=8 on mesh-structured matrices.
    let gpu = Gpu::a100();
    let a: Csr<F16> = workloads::by_name("cop20k_A").unwrap().generate(0.01);
    let b = workloads::dense_b::<F16>(a.ncols(), 8);
    let smat = Smat::prepare(&a, SmatConfig::default()).spmm(&b);
    let (cusp, _) = CusparseLike::new(&gpu, &a).spmm(&b).unwrap();
    assert!(
        smat.report.elapsed_ms() * 2.0 < cusp.time_ms,
        "SMaT {} ms should clearly beat cuSPARSE {} ms",
        smat.report.elapsed_ms(),
        cusp.time_ms
    );
}

#[test]
fn dasp_wins_only_at_n_equals_1() {
    // Fig. 10: DASP is the fastest SpMV (N=1) but loses by N=8.
    let gpu = Gpu::a100();
    let a: Csr<F16> = workloads::by_name("cop20k_A").unwrap().generate(0.01);
    let engine = Smat::prepare(&a, SmatConfig::default());

    let b1 = workloads::dense_b::<F16>(a.ncols(), 1);
    let dasp1 = DaspLike::new(&gpu, &a).spmm(&b1).unwrap().0.time_ms;
    let smat1 = engine.spmm(&b1).report.elapsed_ms();
    assert!(dasp1 < smat1, "DASP should win SpMV: {dasp1} vs {smat1}");

    let b8 = workloads::dense_b::<F16>(a.ncols(), 8);
    let dasp8 = DaspLike::new(&gpu, &a).spmm(&b8).unwrap().0.time_ms;
    let smat8 = engine.spmm(&b8).report.elapsed_ms();
    assert!(smat8 < dasp8, "SMaT should win at N=8: {smat8} vs {dasp8}");
}

#[test]
fn reordering_speeds_up_scrambled_matrices() {
    // Fig. 4: on a scrambled FEM mesh, Jaccard clustering pays off.
    let a: Csr<F16> = workloads::by_name("shipsec1").unwrap().generate(0.01);
    let b = workloads::dense_b::<F16>(a.ncols(), 8);
    let with = Smat::prepare(&a, SmatConfig::default()).spmm(&b);
    let without = Smat::prepare(&a, SmatConfig::default().without_reordering()).spmm(&b);
    assert!(with.report.block_reduction() > 1.2);
    assert!(
        with.report.elapsed_ms() < without.report.elapsed_ms(),
        "reordered {} ms vs original {} ms",
        with.report.elapsed_ms(),
        without.report.elapsed_ms()
    );
}

#[test]
fn dc2_power_law_is_smats_worst_case() {
    // §VI-B: dc2 underutilizes tensor cores (blocks nearly empty) and the
    // static schedule is imbalanced; DASP handles it better.
    let gpu = Gpu::a100();
    let a: Csr<F16> = workloads::by_name("dc2").unwrap().generate(0.02);
    let b = workloads::dense_b::<F16>(a.ncols(), 8);
    let smat = Smat::prepare(&a, SmatConfig::default()).spmm(&b);
    // Tensor core utilization (useful flop / TC flop) is very poor.
    let tc_flop = smat.report.launch.totals.tc_flop(4096);
    let useful = smat.report.launch.totals.flop_useful;
    assert!(
        (useful as f64) < 0.25 * tc_flop as f64,
        "dc2 blocks should be nearly empty: {useful} useful of {tc_flop}"
    );
    // And the gap to DASP shrinks dramatically compared to mesh matrices.
    let (dasp, _) = DaspLike::new(&gpu, &a).spmm(&b).unwrap();
    let gap_dc2 = dasp.time_ms / smat.report.elapsed_ms();

    let mesh: Csr<F16> = workloads::by_name("consph").unwrap().generate(0.01);
    let bm = workloads::dense_b::<F16>(mesh.ncols(), 8);
    let smat_m = Smat::prepare(&mesh, SmatConfig::default()).spmm(&bm);
    let (dasp_m, _) = DaspLike::new(&gpu, &mesh).spmm(&bm).unwrap();
    let gap_mesh = dasp_m.time_ms / smat_m.report.elapsed_ms();
    assert!(
        gap_dc2 < gap_mesh,
        "SMaT's advantage must shrink on dc2: {gap_dc2:.2} vs {gap_mesh:.2}"
    );
}

#[test]
fn magicube_oom_reproduces_on_reduced_memory_device() {
    // §VI-B: Magicube's representation runs out of memory where SMaT fits.
    let a: Csr<F16> = workloads::by_name("mip1").unwrap().generate(0.01);
    let b = workloads::dense_b::<F16>(a.ncols(), 8);
    let mut cfg = DeviceConfig::a100_sxm4_40gb();
    cfg.global_mem_bytes = 3 * a.nnz(); // fits CSR-ish, not Magicube's 4x i16
    let gpu = Gpu::new(cfg.clone());
    let magicube = MagicubeLike::new(&gpu, &a);
    assert!(matches!(
        magicube.spmm(&b),
        Err(SimError::OutOfMemory { .. })
    ));
    // SMaT still fails or fits depending on padding; on this matrix its
    // footprint is smaller than Magicube's.
    let smat_cfg = SmatConfig {
        device: cfg,
        ..SmatConfig::default()
    };
    let smat_footprint = {
        let engine = Smat::prepare(&a, smat_cfg);
        engine.bcsr().payload_bytes() + engine.bcsr().index_bytes()
    };
    assert!(smat_footprint < magicube.footprint_bytes(a.ncols(), 8));
}

#[test]
fn band_crossover_against_cublas_exists() {
    // Fig. 9a: SMaT beats cuBLAS-effective at high sparsity and loses in
    // the dense limit.
    let gpu = Gpu::a100();
    let n = 2048;
    let b = workloads::dense_b::<F16>(n, 8);
    let cublas = CublasLike::new(&gpu).gemm_time(n, n, 8).unwrap();

    let sparse = workloads::band::<F16>(n, 16);
    let cfg = SmatConfig {
        reorder: ReorderAlgorithm::Identity,
        ..SmatConfig::default()
    };
    let smat_sparse = Smat::prepare(&sparse, cfg.clone()).spmm(&b);
    assert!(
        smat_sparse.report.gflops() > cublas.gflops_effective(sparse.nnz(), 8),
        "SMaT must beat cuBLAS-effective on a 98%-sparse band"
    );

    let dense = workloads::band::<F16>(n, n);
    let smat_dense = Smat::prepare(&dense, cfg).spmm(&b);
    let ratio = cublas.gflops_dense / smat_dense.report.gflops();
    assert!(
        ratio > 1.0 && ratio < 6.0,
        "in the dense limit SMaT should be moderately slower than cuBLAS \
         (paper: 2.3x); got {ratio:.2}x"
    );
}

#[test]
fn oom_errors_are_descriptive() {
    let err = SimError::OutOfMemory {
        needed: 100,
        available: 50,
    };
    let msg = err.to_string();
    assert!(msg.contains("100") && msg.contains("50"));
}
