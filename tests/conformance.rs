//! Differential conformance suite: every sparse format × every reordering
//! algorithm × a grid of block shapes, checked against a naive dense f64
//! oracle.
//!
//! Comparison discipline:
//!
//! * The workload generators emit small-integer values, which are exact in
//!   every element type and in both accumulator widths, so the default
//!   (wide-accumulation) comparisons are **bitwise** — any deviation is a
//!   conformance bug, not float noise.
//! * The one place bitwise equality is *not* guaranteed is
//!   `AccumMode::Narrow`, which rounds the running sum to the storage type
//!   after every k-block. That case is checked against the oracle with a
//!   documented ULP bound instead (see
//!   `narrow_accumulation_is_ulp_bounded_against_the_oracle`).

use std::collections::BTreeMap;

use smat::{Calibration, MatrixUpdate, PlanSpace, Planner};
use smat_formats::{Bcsr, Coo, Csc, Csr, Dense, Element, Ell, SrBcrs, F16};
use smat_gpusim::{DeviceConfig, Gpu};
use smat_reorder::ReorderAlgorithm;
use smat_repro::prelude::*;
use smat_repro::workloads;
use smat_shard::{estimated_csr_bytes, ShardPolicy, ShardedSmat};

/// Naive dense oracle: expand `A` to dense and run the textbook triple loop
/// with f64 accumulation over the *full* inner dimension (zeros included),
/// rounding once at the end. Exact for small-integer inputs, so it agrees
/// bitwise with `Csr::spmm_reference` (which skips zeros but also
/// accumulates in f64, ascending k).
fn dense_oracle<T: Element>(a: &Csr<T>, b: &Dense<T>) -> Dense<T> {
    let ad = a.to_dense();
    Dense::from_fn(a.nrows(), b.ncols(), |i, j| {
        let mut acc = 0.0f64;
        for k in 0..a.ncols() {
            acc += ad.get(i, k).to_f64() * b.get(k, j).to_f64();
        }
        T::from_f64(acc)
    })
}

/// A test matrix with uneven row lengths, empty rows, and an empty trailing
/// column block — the shapes that break format conversions in practice.
fn awkward_matrix() -> Csr<F16> {
    let mut coo = Coo::new(96, 80);
    for r in 0..96 {
        if r % 7 == 3 {
            continue; // empty rows
        }
        for j in 0..(1 + r % 5) {
            let c = (r * 3 + j * 13) % 72; // columns 72..80 stay empty
            coo.push(r, c, F16::from_f64(((r + 2 * j) % 7) as f64 - 3.0));
        }
    }
    coo.to_csr()
}

fn rhs(k: usize, n: usize) -> Dense<F16> {
    Dense::from_fn(k, n, |i, j| {
        F16::from_f64(workloads::values::rhs_value(i, j))
    })
}

/// Round-trips `a` through each non-CSR format and returns the CSR that
/// comes back, labelled. Every pipeline and reference comparison below runs
/// on these, so a lossy conversion shows up as an oracle mismatch.
fn format_roundtrips(a: &Csr<F16>) -> Vec<(&'static str, Csr<F16>)> {
    vec![
        ("csr", a.clone()),
        ("csc", Csc::from_csr(a).to_csr()),
        ("coo", {
            let mut coo = Coo::new(a.nrows(), a.ncols());
            for (r, c, v) in a.iter() {
                coo.push(r, c, v);
            }
            coo.to_csr()
        }),
        ("bcsr", Bcsr::from_csr(a, 16, 16).to_csr()),
        ("ell", Ell::from_csr(a).to_csr()),
        ("sr-bcrs", SrBcrs::from_csr(a, 8, 4).to_csr()),
    ]
}

/// Every reordering algorithm the crate exposes.
fn all_reorderings() -> Vec<ReorderAlgorithm> {
    vec![
        ReorderAlgorithm::Identity,
        ReorderAlgorithm::JaccardRows { tau: 0.7 },
        ReorderAlgorithm::JaccardRowsCols { tau: 0.7 },
        ReorderAlgorithm::JaccardLsh {
            tau: 0.7,
            bands: 8,
            rows_per_band: 1,
        },
        ReorderAlgorithm::ReverseCuthillMcKee,
        ReorderAlgorithm::Saad { tau: 0.5 },
        ReorderAlgorithm::GrayCode,
        ReorderAlgorithm::Bisection,
        ReorderAlgorithm::DegreeSort,
    ]
}

/// Block shapes that map to supported MMA fragment shapes (`m = h = 16`,
/// `k = w`).
const BLOCK_SHAPES: [(usize, usize); 3] = [(16, 16), (16, 8), (16, 32)];

#[test]
fn every_format_spmm_reference_matches_the_dense_oracle() {
    for a in [
        awkward_matrix(),
        workloads::random_uniform(128, 96, 0.9, 21),
    ] {
        let b = rhs(a.ncols(), 9);
        let want = dense_oracle(&a, &b);
        assert_eq!(a.spmm_reference(&b), want, "csr");
        assert_eq!(Csc::from_csr(&a).spmm_reference(&b), want, "csc");
        let mut coo = Coo::new(a.nrows(), a.ncols());
        for (r, c, v) in a.iter() {
            coo.push(r, c, v);
        }
        assert_eq!(coo.spmm_reference(&b), want, "coo");
        for (h, w) in BLOCK_SHAPES {
            assert_eq!(
                Bcsr::from_csr(&a, h, w).spmm_reference(&b),
                want,
                "bcsr {h}x{w}"
            );
        }
        assert_eq!(Ell::from_csr(&a).spmm_reference(&b), want, "ell");
        for (vl, s) in [(8, 4), (16, 2), (4, 8)] {
            assert_eq!(
                SrBcrs::from_csr(&a, vl, s).spmm_reference(&b),
                want,
                "sr-bcrs v{vl} s{s}"
            );
        }
    }
}

#[test]
fn pipeline_conforms_for_every_format_reordering_and_block_shape() {
    let base = awkward_matrix();
    let b = rhs(base.ncols(), 9);
    for (fmt, a) in format_roundtrips(&base) {
        let want = dense_oracle(&a, &b);
        for alg in all_reorderings() {
            for (h, w) in BLOCK_SHAPES {
                let cfg = SmatConfig {
                    block_h: h,
                    block_w: w,
                    reorder: alg,
                    ..SmatConfig::default()
                };
                let run = Smat::prepare(&a, cfg).spmm(&b);
                assert_eq!(
                    run.c,
                    want,
                    "format {fmt}, reorder {}, block {h}x{w}",
                    alg.name()
                );
            }
        }
    }
}

#[test]
fn planner_chosen_configs_conform_bitwise() {
    // The admission planner only picks *which* configuration runs; the run
    // itself must stay in the bitwise-exact regime. Exercise both planner
    // modes (calibrated scoring and probe-run fallback) on matrices with
    // awkward structure and make sure the chosen pipeline agrees with the
    // dense oracle exactly.
    let base = SmatConfig::default();
    let calibrated = Planner::with_calibration(
        PlanSpace::default(),
        Calibration::fit_on(&workloads::calibration_bands::<F16>(96), 8, &base),
    );
    let probing = Planner::new(PlanSpace::default());
    for (label, a) in [
        ("awkward", awkward_matrix()),
        ("uniform", workloads::random_uniform(128, 96, 0.9, 21)),
        ("rmat", workloads::rmat::<F16>(7, 600, 77)),
    ] {
        let b = rhs(a.ncols(), 9);
        let want = dense_oracle(&a, &b);
        for (mode, planner) in [("calibrated", &calibrated), ("probe", &probing)] {
            let d = planner.decide(&a, b.ncols(), &base);
            let run = Smat::prepare(&a, d.apply(&base)).spmm(&b);
            assert_eq!(
                run.c,
                want,
                "{label} under the {mode} planner's choice \
                 ({}x{}, {}, tc={})",
                d.block_h,
                d.block_w,
                d.reorder.name(),
                d.use_tc
            );
        }
    }
}

#[test]
fn integer_elements_conform_exactly() {
    // The integer path (i16 storage, i32 accumulation) is exact end to end;
    // SR-BCRS is Magicube's native integer substrate, so exercise it there
    // and through the reference kernels.
    let a16: Csr<i16> = awkward_matrix().cast();
    let b = Dense::from_fn(a16.ncols(), 9, |i, j| ((i + 2 * j) % 5) as i16 - 2);
    let want = dense_oracle(&a16, &b);
    assert_eq!(a16.spmm_reference(&b), want, "csr i16");
    assert_eq!(
        SrBcrs::from_csr(&a16, 8, 4).spmm_reference(&b),
        want,
        "sr-bcrs i16"
    );
    assert_eq!(
        Bcsr::from_csr(&a16, 16, 16).spmm_reference(&b),
        want,
        "bcsr i16"
    );
}

/// Maps an F16 bit pattern to a monotone integer so ULP distance is a
/// subtraction (standard sign-magnitude → biased-ordinal trick).
fn f16_ordinal(x: F16) -> i32 {
    let bits = i32::from(x.0);
    if bits & 0x8000 != 0 {
        0x8000 - (bits & 0x7fff)
    } else {
        0x8000 + bits
    }
}

fn ulp_distance(a: F16, b: F16) -> u32 {
    (f16_ordinal(a) - f16_ordinal(b)).unsigned_abs()
}

#[test]
fn narrow_accumulation_is_ulp_bounded_against_the_oracle() {
    // Narrow accumulation rounds the running sum to f16 after every
    // k-block (the paper's Listing 1 variant), so bitwise equality with the
    // f64 oracle is NOT guaranteed. Bound: the inputs are non-negative (no
    // cancellation → the running magnitude is monotone), so each of the
    // ⌈K/w⌉ per-block roundings contributes at most 1 ULP at the *final*
    // magnitude, plus 1 for the oracle's own final rounding:
    //
    //     ulp(narrow, oracle) ≤ ⌈K/w⌉ + 1.
    //
    // The B values use denominator 3 so essentially every product and
    // partial sum actually rounds — the bound is exercised, not vacuous.
    let a: Csr<F16> = {
        let mut coo = Coo::new(96, 96);
        for r in 0..96 {
            for j in 0..6 {
                coo.push(
                    r,
                    (r * 5 + j * 17) % 96,
                    F16::from_f64(((r + j) % 4 + 1) as f64 / 3.0),
                );
            }
        }
        coo.to_csr()
    };
    let b = Dense::from_fn(96, 8, |i, j| {
        F16::from_f64(((i + 3 * j) % 5 + 1) as f64 / 3.0)
    });
    let want = dense_oracle(&a, &b);
    for (h, w) in BLOCK_SHAPES {
        let cfg = SmatConfig {
            block_h: h,
            block_w: w,
            accum: smat::AccumMode::Narrow,
            ..SmatConfig::default()
        };
        let got = Smat::prepare(&a, cfg).spmm(&b).c;
        let bound = (a.ncols().div_ceil(w) + 1) as u32;
        let mut worst = 0;
        for i in 0..want.nrows() {
            for j in 0..want.ncols() {
                let d = ulp_distance(got.get(i, j), want.get(i, j));
                worst = worst.max(d);
                assert!(
                    d <= bound,
                    "block {h}x{w}: C[{i},{j}] off by {d} ULP (bound {bound}): \
                     narrow {} vs oracle {}",
                    got.get(i, j).to_f64(),
                    want.get(i, j).to_f64()
                );
            }
        }
        // The wide default on the same inputs stays bitwise-equal to the
        // oracle even with rounding-hostile values: f16×f16 products are
        // exact in f32 and these magnitudes never exceed f32's integer-exact
        // accumulation range.
        assert!(worst <= bound, "block {h}x{w}: worst {worst} > {bound}");
    }
}

#[test]
fn sharded_execution_conforms_for_every_reordering_and_shard_count() {
    // Row partitioning composes with any per-shard pipeline: each shard
    // reorders and packs independently, and the row-concatenated join must
    // still agree bitwise with the dense oracle. The awkward matrix puts
    // empty rows and ragged row lengths on both sides of shard boundaries.
    let a = awkward_matrix();
    let b = rhs(a.ncols(), 9);
    let want = dense_oracle(&a, &b);
    let gpus = Gpu::pool(DeviceConfig::a100_sxm4_40gb(), 3);
    for alg in all_reorderings() {
        for target in [2usize, 3, 5] {
            let policy = ShardPolicy {
                max_bytes: estimated_csr_bytes(&a).div_ceil(target),
            };
            let cfg = SmatConfig {
                reorder: alg,
                ..SmatConfig::default()
            };
            let sharded = ShardedSmat::prepare(&a, cfg, &policy);
            let got = sharded.try_spmm_on_pool(&gpus, &b).expect("pool run");
            assert_eq!(
                got,
                want,
                "reorder {}, {} shards",
                alg.name(),
                sharded.plan().nshards()
            );
        }
    }
}

/// The scripted mutation sequence for the dynamic-matrix arm: updates of
/// occupied cells, inserts into unoccupied cells (including an empty row
/// and the empty trailing column block of [`awkward_matrix`]), deletes of
/// both kinds, a delete of an absent cell, and a re-insert after delete.
fn mutation_script() -> Vec<MatrixUpdate<F16>> {
    let v = F16::from_f64;
    vec![
        // (0,0) is occupied in the awkward matrix; overwrite it.
        MatrixUpdate::Update {
            row: 0,
            col: 0,
            value: v(2.0),
        },
        // Columns 72..80 are structurally empty; insert there.
        MatrixUpdate::Insert {
            row: 5,
            col: 75,
            value: v(-2.0),
        },
        // Row 3 is an empty row (3 % 7 == 3); populate it.
        MatrixUpdate::Insert {
            row: 3,
            col: 40,
            value: v(1.0),
        },
        // Delete an occupied base cell.
        MatrixUpdate::Delete { row: 1, col: 3 },
        // Rewrite the cell inserted two steps ago.
        MatrixUpdate::Update {
            row: 5,
            col: 75,
            value: v(3.0),
        },
        // Delete a cell that was never present (absolute no-op state).
        MatrixUpdate::Delete { row: 50, col: 74 },
        // Delete the overlay-inserted cell again.
        MatrixUpdate::Delete { row: 3, col: 40 },
        // Re-insert over the deleted base cell.
        MatrixUpdate::Insert {
            row: 1,
            col: 3,
            value: v(-1.0),
        },
    ]
}

#[test]
fn mutated_pipelines_conform_for_every_format_and_reordering() {
    // Dynamic-matrix arm: replay the mutation script one step at a time and
    // after EVERY step compare the overlayed pipeline against a dense
    // oracle rebuilt from scratch (base ⊕ overrides-so-far). Any divergence
    // between the incremental delta path and a clean re-preparation is a
    // conformance bug. Runs over every format round-trip and every
    // reordering, because the overlay corrections are applied in the
    // original coordinate space *after* the permuted-space kernel.
    let base = awkward_matrix();
    let b = rhs(base.ncols(), 9);
    for (fmt, a) in format_roundtrips(&base) {
        for alg in all_reorderings() {
            let cfg = SmatConfig {
                reorder: alg,
                ..SmatConfig::default()
            };
            let smat = Smat::prepare(&a, cfg);
            let mut cells: BTreeMap<(usize, usize), f64> = BTreeMap::new();
            for (step, op) in mutation_script().iter().enumerate() {
                let epoch = smat.apply_updates(std::slice::from_ref(op));
                assert_eq!(
                    epoch,
                    (step + 1) as u64,
                    "each mutation bumps the epoch exactly once"
                );
                let (row, col) = op.cell();
                cells.insert((row, col), op.value_f64());
                let overrides: Vec<(usize, usize, f64)> =
                    cells.iter().map(|(&(r, c), &v)| (r, c, v)).collect();
                let merged = Coo::with_overrides(&a, &overrides).to_csr();
                let want = dense_oracle(&merged, &b);
                assert_eq!(
                    smat.spmm(&b).c,
                    want,
                    "format {fmt}, reorder {}, step {step} ({op:?})",
                    alg.name()
                );
                assert_eq!(
                    smat.merged_csr().to_dense(),
                    merged.to_dense(),
                    "format {fmt}, reorder {}, step {step}: compaction \
                     operand diverged from the override merge",
                    alg.name()
                );
            }
        }
    }
}

#[test]
fn mutated_spmm_matches_a_from_scratch_rebuild_at_every_epoch() {
    // The compaction contract: at any epoch, re-preparing `merged_csr()`
    // from scratch (even under a different reordering) yields a pipeline
    // whose product is bitwise identical to the overlayed one. This is the
    // exact swap `smat-serve` performs in the background.
    let a = awkward_matrix();
    let b = rhs(a.ncols(), 9);
    let smat = Smat::prepare(&a, SmatConfig::default());
    for op in mutation_script() {
        smat.apply_updates(std::slice::from_ref(&op));
        let overlayed = smat.spmm(&b).c;
        let rebuilt = Smat::prepare(&smat.merged_csr(), SmatConfig::default()).spmm(&b);
        assert_eq!(overlayed, rebuilt.c, "rebuild at epoch {op:?}");
        let reordered_cfg = SmatConfig {
            reorder: ReorderAlgorithm::ReverseCuthillMcKee,
            ..SmatConfig::default()
        };
        let rebuilt_rcm = Smat::prepare(&smat.merged_csr(), reordered_cfg).spmm(&b);
        assert_eq!(overlayed, rebuilt_rcm.c, "RCM rebuild at {op:?}");
    }
}

#[test]
fn empty_and_degenerate_matrices_conform() {
    let empty: Csr<F16> = Coo::new(32, 32).to_csr();
    let b = rhs(32, 4);
    let want = dense_oracle(&empty, &b);
    assert_eq!(empty.spmm_reference(&b), want);
    assert_eq!(Csc::from_csr(&empty).spmm_reference(&b), want);
    assert_eq!(Ell::from_csr(&empty).spmm_reference(&b), want);
    assert_eq!(Bcsr::from_csr(&empty, 16, 16).spmm_reference(&b), want);
    assert_eq!(SrBcrs::from_csr(&empty, 8, 4).spmm_reference(&b), want);
    let run = Smat::prepare(&empty, SmatConfig::default()).spmm(&b);
    assert_eq!(run.c, want);

    // Single-entry matrix: the permutation plumbing has nothing to hide
    // behind.
    let mut one = Coo::new(40, 40);
    one.push(17, 23, F16::from_f64(2.0));
    let one = one.to_csr();
    let b = rhs(40, 4);
    let want = dense_oracle(&one, &b);
    for alg in all_reorderings() {
        let cfg = SmatConfig {
            reorder: alg,
            ..SmatConfig::default()
        };
        assert_eq!(
            Smat::prepare(&one, cfg).spmm(&b).c,
            want,
            "reorder {}",
            alg.name()
        );
    }
}
