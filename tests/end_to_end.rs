//! Integration tests spanning crates: every engine, every precision, on
//! generated workloads, checked against the exact f64 reference. The
//! generators emit small-integer values, so all comparisons are bit-exact
//! (see `smat_workloads::values`).

use smat_formats::{Bf16, Csr, Dense, Element};
use smat_gpusim::Gpu;
use smat_reorder::ReorderAlgorithm;
use smat_repro::baselines::{CublasLike, CusparseLike, DaspLike, MagicubeLike};
use smat_repro::prelude::*;
use smat_repro::workloads;

fn check_smat<T: Element>(a: &Csr<T>, n: usize) {
    let b = Dense::from_fn(a.ncols(), n, |i, j| {
        T::from_f64(workloads::values::rhs_value(i, j))
    });
    let want = a.spmm_reference(&b);
    let run = Smat::prepare(a, SmatConfig::default()).spmm(&b);
    assert_eq!(run.c, want);
}

#[test]
fn smat_matches_reference_in_f16_bf16_f32() {
    let base = workloads::random_uniform::<f32>(200, 160, 0.93, 11);
    check_smat::<f32>(&base, 8);
    check_smat::<F16>(&base.cast(), 8);
    check_smat::<Bf16>(&base.cast(), 8);
}

#[test]
fn smat_matches_reference_on_every_table1_mimic() {
    for m in workloads::table1() {
        let a: Csr<F16> = m.generate(0.003);
        let b = workloads::dense_b::<F16>(a.ncols(), 8);
        let run = Smat::prepare(&a, SmatConfig::default()).spmm(&b);
        assert_eq!(run.c, a.spmm_reference(&b), "mimic {}", m.name);
    }
}

#[test]
fn all_engines_agree_on_the_same_product() {
    let gpu = Gpu::a100();
    let a = workloads::random_uniform::<F16>(180, 180, 0.9, 3);
    let b = workloads::dense_b::<F16>(180, 8);
    let want = a.spmm_reference(&b);

    let smat = Smat::prepare(&a, SmatConfig::default()).spmm(&b).c;
    let (_, cusp) = CusparseLike::new(&gpu, &a).spmm(&b).unwrap();
    let (_, dasp) = DaspLike::new(&gpu, &a).spmm(&b).unwrap();
    let (_, magi) = MagicubeLike::new(&gpu, &a).spmm(&b).unwrap();

    assert_eq!(smat, want, "SMaT");
    assert_eq!(cusp, want, "cuSPARSE-like");
    assert_eq!(dasp, want, "DASP-like");
    assert_eq!(magi, want, "Magicube-like");
}

#[test]
fn cublas_functional_gemm_agrees_with_sparse_engines() {
    let gpu = Gpu::a100();
    let a = workloads::random_uniform::<F16>(64, 48, 0.7, 9);
    let b = workloads::dense_b::<F16>(48, 8);
    let dense_a = a.to_dense();
    let gemm = CublasLike::new(&gpu).gemm(&dense_a, &b);
    assert_eq!(gemm, a.spmm_reference(&b));
}

#[test]
fn every_reordering_preserves_every_mimic_product() {
    for m in workloads::table1().into_iter().take(3) {
        let a: Csr<F16> = m.generate(0.002);
        let b = workloads::dense_b::<F16>(a.ncols(), 8);
        let want = a.spmm_reference(&b);
        for alg in [
            ReorderAlgorithm::JaccardRows { tau: 0.7 },
            ReorderAlgorithm::JaccardRowsCols { tau: 0.7 },
            ReorderAlgorithm::GrayCode,
            ReorderAlgorithm::DegreeSort,
        ] {
            let cfg = SmatConfig {
                reorder: alg,
                ..SmatConfig::default()
            };
            let run = Smat::prepare(&a, cfg).spmm(&b);
            assert_eq!(run.c, want, "{} on {}", alg.name(), m.name);
        }
    }
}

#[test]
fn non_multiple_dimensions_are_handled_everywhere() {
    // Dimensions that don't divide the block/panel/tile sizes.
    let gpu = Gpu::a100();
    for (rows, cols, n) in [(17, 23, 3), (33, 31, 9), (100, 7, 1), (5, 130, 20)] {
        let a = workloads::random_uniform::<F16>(rows, cols, 0.7, 17);
        let b = workloads::dense_b::<F16>(cols, n);
        let want = a.spmm_reference(&b);
        assert_eq!(
            Smat::prepare(&a, SmatConfig::default()).spmm(&b).c,
            want,
            "smat {rows}x{cols} N={n}"
        );
        assert_eq!(
            CusparseLike::new(&gpu, &a).spmm(&b).unwrap().1,
            want,
            "cusparse {rows}x{cols} N={n}"
        );
        assert_eq!(
            DaspLike::new(&gpu, &a).spmm(&b).unwrap().1,
            want,
            "dasp {rows}x{cols} N={n}"
        );
        assert_eq!(
            MagicubeLike::new(&gpu, &a).spmm(&b).unwrap().1,
            want,
            "magicube {rows}x{cols} N={n}"
        );
    }
}

#[test]
fn i8_tensor_core_path_end_to_end() {
    // INT8 inputs accumulate in i32; values stay small enough to be exact.
    let a = workloads::random_uniform::<i8>(96, 96, 0.9, 23);
    let b = Dense::from_fn(96, 8, |i, j| {
        <i8 as Element>::from_f64(workloads::values::rhs_value(i, j))
    });
    let run = Smat::prepare(&a, SmatConfig::default()).spmm(&b);
    assert_eq!(run.c, a.spmm_reference(&b));
}

#[test]
fn mtx_file_roundtrip_through_the_pipeline() {
    // Write a mimic to Matrix Market, read it back, and multiply.
    let a: Csr<F16> = workloads::by_name("rma10").unwrap().generate(0.002);
    let mut buf = Vec::new();
    smat_formats::mtx::write_csr(&a, &mut buf).unwrap();
    let a2: Csr<F16> = smat_formats::mtx::read_csr_str(std::str::from_utf8(&buf).unwrap()).unwrap();
    assert_eq!(a2, a);
    let b = workloads::dense_b::<F16>(a.ncols(), 8);
    assert_eq!(
        Smat::prepare(&a2, SmatConfig::default()).spmm(&b).c,
        a.spmm_reference(&b)
    );
}
