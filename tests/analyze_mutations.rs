//! Mutation coverage for the `smat-analyze` format verifiers: start from a
//! random *valid* matrix, corrupt exactly one invariant dimension of its
//! raw parts, and assert the verifier reports the matching diagnostic code.
//! The dual direction is covered too: every conversion roundtrip the
//! pipeline uses (CSR ↔ BCSR ↔ COO, plus CSC/ELL/SR-BCRS) must stay
//! verifier-clean.

use proptest::prelude::*;
use smat_analyze::{
    verify_bcsr, verify_coo, verify_csc, verify_csr, verify_ell, verify_entries,
    verify_permutation, verify_srbcrs, DiagCode, DiagnosticsExt,
};
use smat_formats::{Bcsr, Coo, Csc, Csr, Element, Ell, Permutation, SrBcrs, F16};

/// Strategy: a random sparse matrix with at least one nonzero, so every
/// mutation below has something to corrupt.
fn nonempty_matrix() -> impl Strategy<Value = Csr<F16>> {
    (2usize..40, 2usize..40).prop_flat_map(|(r, c)| {
        proptest::collection::vec(((0..r), (0..c), 1i32..=4), 1..120).prop_map(move |entries| {
            let mut coo = Coo::new(r, c);
            for (i, j, v) in entries {
                coo.push(i, j, F16::from_f64(f64::from(v)));
            }
            coo.to_csr()
        })
    })
}

/// A seeded permutation of `0..n` (Fisher–Yates over a simple LCG).
fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_add(11);
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        idx.swap(i, j);
    }
    idx
}

/// Raw CSR parts of a valid matrix, ready to be corrupted.
fn parts(a: &Csr<F16>) -> (Vec<usize>, Vec<usize>, Vec<F16>) {
    (
        a.row_ptr().to_vec(),
        a.col_idx().to_vec(),
        a.values().to_vec(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ---- CSR structural mutations: one invariant, one exact code ----

    #[test]
    fn truncated_row_ptr_fires_f001(a in nonempty_matrix()) {
        let (mut rp, ci, vs) = parts(&a);
        rp.pop();
        let err = Csr::try_from_raw(a.nrows(), a.ncols(), rp, ci, vs).unwrap_err();
        prop_assert_eq!(err.codes(), vec![DiagCode::RowPtrLength]);
    }

    #[test]
    fn shifted_row_ptr_start_fires_f002(a in nonempty_matrix()) {
        let (mut rp, ci, vs) = parts(&a);
        rp[0] += 1;
        let err = Csr::try_from_raw(a.nrows(), a.ncols(), rp, ci, vs).unwrap_err();
        prop_assert!(err.codes().contains(&DiagCode::RowPtrStart), "{err:?}");
    }

    #[test]
    fn wrong_row_ptr_end_fires_f003(a in nonempty_matrix()) {
        let (mut rp, ci, vs) = parts(&a);
        *rp.last_mut().unwrap() += 1;
        let err = Csr::try_from_raw(a.nrows(), a.ncols(), rp, ci, vs).unwrap_err();
        prop_assert!(err.codes().contains(&DiagCode::RowPtrEnd), "{err:?}");
    }

    #[test]
    fn non_monotone_row_ptr_fires_f004(a in nonempty_matrix()) {
        let (mut rp, ci, vs) = parts(&a);
        // nnz >= 1 guarantees a strictly increasing adjacent pair to swap.
        let i = (0..a.nrows()).find(|&i| rp[i] < rp[i + 1]).unwrap();
        rp.swap(i, i + 1);
        let err = Csr::try_from_raw(a.nrows(), a.ncols(), rp, ci, vs).unwrap_err();
        prop_assert!(err.codes().contains(&DiagCode::RowPtrNonMonotone), "{err:?}");
    }

    #[test]
    fn out_of_bounds_col_idx_fires_f005(a in nonempty_matrix(), pick in 0usize..1000) {
        let (rp, mut ci, vs) = parts(&a);
        let k = pick % ci.len();
        // Adding ncols keeps the row strictly increasing at k but pushes the
        // index out of range, so F005 is the only structural violation.
        ci[k] += a.ncols();
        let err = Csr::try_from_raw(a.nrows(), a.ncols(), rp, ci, vs).unwrap_err();
        prop_assert!(err.codes().contains(&DiagCode::ColIdxOutOfBounds), "{err:?}");
    }

    #[test]
    fn unsorted_col_idx_fires_f006(a in nonempty_matrix()) {
        let (rp, mut ci, vs) = parts(&a);
        // Duplicate the first entry of a row holding at least two; skip the
        // (rare) draws where every row has a single nonzero.
        let Some(i) = (0..a.nrows()).find(|&i| rp[i + 1] - rp[i] >= 2) else {
            return;
        };
        ci[rp[i] + 1] = ci[rp[i]];
        let err = Csr::try_from_raw(a.nrows(), a.ncols(), rp, ci, vs).unwrap_err();
        prop_assert!(err.codes().contains(&DiagCode::ColIdxUnsorted), "{err:?}");
    }

    #[test]
    fn values_arity_mismatch_fires_f007(a in nonempty_matrix()) {
        let (rp, ci, mut vs) = parts(&a);
        vs.pop();
        let err = Csr::try_from_raw(a.nrows(), a.ncols(), rp, ci, vs).unwrap_err();
        prop_assert_eq!(err.codes(), vec![DiagCode::ArityMismatch]);
    }

    // ---- Payload mutations: structure stays valid, values go bad ----

    #[test]
    fn nan_payload_fires_f008_at_the_poisoned_position(
        a in nonempty_matrix(), pick in 0usize..1000
    ) {
        let (rp, ci, mut vs) = parts(&a);
        let k = pick % vs.len();
        vs[k] = F16::from_f32(f32::NAN);
        let poisoned = Csr::try_from_raw(a.nrows(), a.ncols(), rp, ci, vs).unwrap();
        let diags = verify_csr(&poisoned);
        prop_assert_eq!(diags.codes(), vec![DiagCode::NonFinitePayload]);
        // The BCSR built from it must flag the same poison.
        let bcsr = Bcsr::from_csr(&poisoned, 4, 4);
        prop_assert!(
            verify_bcsr(&bcsr).codes().contains(&DiagCode::NonFinitePayload)
        );
    }

    // ---- BCSR mutations ----

    #[test]
    fn zero_block_dim_fires_f010(a in nonempty_matrix()) {
        let b = Bcsr::from_csr(&a, 4, 4);
        let err = Bcsr::<F16>::try_from_raw(
            a.nrows(), a.ncols(), 0, 4,
            b.row_ptr().to_vec(), b.col_idx().to_vec(), b.values().to_vec(), b.nnz(),
        ).unwrap_err();
        prop_assert_eq!(err.codes(), vec![DiagCode::BlockDimZero]);
    }

    #[test]
    fn truncated_block_payload_fires_f007(a in nonempty_matrix()) {
        let b = Bcsr::from_csr(&a, 4, 4);
        let mut vs = b.values().to_vec();
        vs.pop();
        let err = Bcsr::<F16>::try_from_raw(
            a.nrows(), a.ncols(), 4, 4,
            b.row_ptr().to_vec(), b.col_idx().to_vec(), vs, b.nnz(),
        ).unwrap_err();
        prop_assert_eq!(err.codes(), vec![DiagCode::ArityMismatch]);
    }

    #[test]
    fn inflated_nnz_fires_f011(a in nonempty_matrix()) {
        let b = Bcsr::from_csr(&a, 4, 4);
        let err = Bcsr::<F16>::try_from_raw(
            a.nrows(), a.ncols(), 4, 4,
            b.row_ptr().to_vec(), b.col_idx().to_vec(), b.values().to_vec(),
            b.values().len() + 1,
        ).unwrap_err();
        prop_assert_eq!(err.codes(), vec![DiagCode::NnzInconsistent]);
    }

    // ---- Permutation mutations ----

    #[test]
    fn out_of_range_image_fires_f012(n in 2usize..50, seed in 0u64..1000, pick in 0usize..1000) {
        let mut idx = shuffled(n, seed);
        let i = pick % n;
        idx[i] = n + pick;
        let err = Permutation::try_from_vec(idx).unwrap_err();
        prop_assert_eq!(err.codes(), vec![DiagCode::PermOutOfRange]);
    }

    #[test]
    fn duplicate_image_fires_f013(n in 2usize..50, seed in 0u64..1000, pick in 0usize..1000) {
        let mut idx = shuffled(n, seed);
        let i = pick % (n - 1);
        idx[i + 1] = idx[i];
        let err = Permutation::try_from_vec(idx).unwrap_err();
        prop_assert_eq!(err.codes(), vec![DiagCode::PermDuplicate]);
    }

    #[test]
    fn length_mismatch_fires_f014(n in 1usize..50, seed in 0u64..1000) {
        let p = Permutation::from_vec(shuffled(n, seed));
        prop_assert!(verify_permutation(&p, Some(n)).is_empty());
        let diags = verify_permutation(&p, Some(n + 1));
        prop_assert_eq!(diags.codes(), vec![DiagCode::PermLengthMismatch]);
    }

    // ---- Raw-triplet mutations ----

    #[test]
    fn out_of_bounds_entry_fires_f016(a in nonempty_matrix(), pick in 0usize..1000) {
        let mut entries: Vec<(usize, usize, F16)> = a.iter().collect();
        let k = pick % entries.len();
        entries[k].0 += a.nrows();
        let diags = verify_entries(a.nrows(), a.ncols(), &entries);
        prop_assert_eq!(diags.codes(), vec![DiagCode::EntryOutOfBounds]);
    }

    #[test]
    fn duplicated_entry_warns_f017(a in nonempty_matrix(), pick in 0usize..1000) {
        let mut entries: Vec<(usize, usize, F16)> = a.iter().collect();
        let k = pick % entries.len();
        entries.push(entries[k]);
        let diags = verify_entries(a.nrows(), a.ncols(), &entries);
        prop_assert_eq!(diags.codes(), vec![DiagCode::DuplicateEntry]);
        // Duplicates are a warning (COO accumulates them), never an error.
        prop_assert!(!diags.has_errors());
    }

    // ---- Conversion roundtrips stay verifier-clean ----

    #[test]
    fn every_conversion_roundtrip_is_verifier_clean(
        a in nonempty_matrix(), h in 1usize..9, w in 1usize..9
    ) {
        prop_assert!(verify_csr(&a).is_empty());

        let bcsr = Bcsr::from_csr(&a, h, w);
        prop_assert!(verify_bcsr(&bcsr).is_empty());
        let back = bcsr.to_csr();
        prop_assert!(verify_csr(&back).is_empty());
        prop_assert_eq!(&back, &a);

        let coo = a.to_coo();
        prop_assert!(verify_coo(&coo).is_empty());
        prop_assert!(verify_csr(&coo.to_csr()).is_empty());

        prop_assert!(verify_csc(&Csc::from_csr(&a)).is_empty());
        prop_assert!(verify_ell(&Ell::from_csr(&a)).is_empty());
    }

    #[test]
    fn srbcrs_conversion_is_verifier_clean(
        a in nonempty_matrix(), v in 1usize..10, s in 1usize..6
    ) {
        let sr = SrBcrs::from_csr(&a.cast::<i16>(), v, s);
        prop_assert!(verify_srbcrs(&sr).is_empty());
        prop_assert!(verify_csr(&sr.to_csr()).is_empty());
    }
}
