//! Mutation coverage for the `smat-analyze` format verifiers: start from a
//! random *valid* matrix, corrupt exactly one invariant dimension of its
//! raw parts, and assert the verifier reports the matching diagnostic code.
//! The dual direction is covered too: every conversion roundtrip the
//! pipeline uses (CSR ↔ BCSR ↔ COO, plus CSC/ELL/SR-BCRS) must stay
//! verifier-clean.
//!
//! The same discipline extends to the `smat-sanitize` concurrency codes
//! (C001–C008, see the `concurrency` module at the bottom): start from a
//! *correct* lock-order graph or synchronization protocol, mutate exactly
//! one aspect (reverse one acquisition edge, move the predicate check out
//! from under the mutex, drop the lock around a read-modify-write, add a
//! second writer), and assert the matching analysis — lockdep or the
//! interleaving model checker — fires the matching code, while the
//! unmutated original stays clean.

use proptest::prelude::*;
use smat_analyze::{
    verify_bcsr, verify_coo, verify_csc, verify_csr, verify_ell, verify_entries,
    verify_permutation, verify_srbcrs, DiagCode, DiagnosticsExt,
};
use smat_formats::{Bcsr, Coo, Csc, Csr, Element, Ell, Permutation, SrBcrs, F16};

/// Strategy: a random sparse matrix with at least one nonzero, so every
/// mutation below has something to corrupt.
fn nonempty_matrix() -> impl Strategy<Value = Csr<F16>> {
    (2usize..40, 2usize..40).prop_flat_map(|(r, c)| {
        proptest::collection::vec(((0..r), (0..c), 1i32..=4), 1..120).prop_map(move |entries| {
            let mut coo = Coo::new(r, c);
            for (i, j, v) in entries {
                coo.push(i, j, F16::from_f64(f64::from(v)));
            }
            coo.to_csr()
        })
    })
}

/// A seeded permutation of `0..n` (Fisher–Yates over a simple LCG).
fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_add(11);
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        idx.swap(i, j);
    }
    idx
}

/// Raw CSR parts of a valid matrix, ready to be corrupted.
fn parts(a: &Csr<F16>) -> (Vec<usize>, Vec<usize>, Vec<F16>) {
    (
        a.row_ptr().to_vec(),
        a.col_idx().to_vec(),
        a.values().to_vec(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ---- CSR structural mutations: one invariant, one exact code ----

    #[test]
    fn truncated_row_ptr_fires_f001(a in nonempty_matrix()) {
        let (mut rp, ci, vs) = parts(&a);
        rp.pop();
        let err = Csr::try_from_raw(a.nrows(), a.ncols(), rp, ci, vs).unwrap_err();
        prop_assert_eq!(err.codes(), vec![DiagCode::RowPtrLength]);
    }

    #[test]
    fn shifted_row_ptr_start_fires_f002(a in nonempty_matrix()) {
        let (mut rp, ci, vs) = parts(&a);
        rp[0] += 1;
        let err = Csr::try_from_raw(a.nrows(), a.ncols(), rp, ci, vs).unwrap_err();
        prop_assert!(err.codes().contains(&DiagCode::RowPtrStart), "{err:?}");
    }

    #[test]
    fn wrong_row_ptr_end_fires_f003(a in nonempty_matrix()) {
        let (mut rp, ci, vs) = parts(&a);
        *rp.last_mut().unwrap() += 1;
        let err = Csr::try_from_raw(a.nrows(), a.ncols(), rp, ci, vs).unwrap_err();
        prop_assert!(err.codes().contains(&DiagCode::RowPtrEnd), "{err:?}");
    }

    #[test]
    fn non_monotone_row_ptr_fires_f004(a in nonempty_matrix()) {
        let (mut rp, ci, vs) = parts(&a);
        // nnz >= 1 guarantees a strictly increasing adjacent pair to swap.
        let i = (0..a.nrows()).find(|&i| rp[i] < rp[i + 1]).unwrap();
        rp.swap(i, i + 1);
        let err = Csr::try_from_raw(a.nrows(), a.ncols(), rp, ci, vs).unwrap_err();
        prop_assert!(err.codes().contains(&DiagCode::RowPtrNonMonotone), "{err:?}");
    }

    #[test]
    fn out_of_bounds_col_idx_fires_f005(a in nonempty_matrix(), pick in 0usize..1000) {
        let (rp, mut ci, vs) = parts(&a);
        let k = pick % ci.len();
        // Adding ncols keeps the row strictly increasing at k but pushes the
        // index out of range, so F005 is the only structural violation.
        ci[k] += a.ncols();
        let err = Csr::try_from_raw(a.nrows(), a.ncols(), rp, ci, vs).unwrap_err();
        prop_assert!(err.codes().contains(&DiagCode::ColIdxOutOfBounds), "{err:?}");
    }

    #[test]
    fn unsorted_col_idx_fires_f006(a in nonempty_matrix()) {
        let (rp, mut ci, vs) = parts(&a);
        // Duplicate the first entry of a row holding at least two; skip the
        // (rare) draws where every row has a single nonzero.
        let Some(i) = (0..a.nrows()).find(|&i| rp[i + 1] - rp[i] >= 2) else {
            return;
        };
        ci[rp[i] + 1] = ci[rp[i]];
        let err = Csr::try_from_raw(a.nrows(), a.ncols(), rp, ci, vs).unwrap_err();
        prop_assert!(err.codes().contains(&DiagCode::ColIdxUnsorted), "{err:?}");
    }

    #[test]
    fn values_arity_mismatch_fires_f007(a in nonempty_matrix()) {
        let (rp, ci, mut vs) = parts(&a);
        vs.pop();
        let err = Csr::try_from_raw(a.nrows(), a.ncols(), rp, ci, vs).unwrap_err();
        prop_assert_eq!(err.codes(), vec![DiagCode::ArityMismatch]);
    }

    // ---- Payload mutations: structure stays valid, values go bad ----

    #[test]
    fn nan_payload_fires_f008_at_the_poisoned_position(
        a in nonempty_matrix(), pick in 0usize..1000
    ) {
        let (rp, ci, mut vs) = parts(&a);
        let k = pick % vs.len();
        vs[k] = F16::from_f32(f32::NAN);
        let poisoned = Csr::try_from_raw(a.nrows(), a.ncols(), rp, ci, vs).unwrap();
        let diags = verify_csr(&poisoned);
        prop_assert_eq!(diags.codes(), vec![DiagCode::NonFinitePayload]);
        // The BCSR built from it must flag the same poison.
        let bcsr = Bcsr::from_csr(&poisoned, 4, 4);
        prop_assert!(
            verify_bcsr(&bcsr).codes().contains(&DiagCode::NonFinitePayload)
        );
    }

    // ---- BCSR mutations ----

    #[test]
    fn zero_block_dim_fires_f010(a in nonempty_matrix()) {
        let b = Bcsr::from_csr(&a, 4, 4);
        let err = Bcsr::<F16>::try_from_raw(
            a.nrows(), a.ncols(), 0, 4,
            b.row_ptr().to_vec(), b.col_idx().to_vec(), b.values().to_vec(), b.nnz(),
        ).unwrap_err();
        prop_assert_eq!(err.codes(), vec![DiagCode::BlockDimZero]);
    }

    #[test]
    fn truncated_block_payload_fires_f007(a in nonempty_matrix()) {
        let b = Bcsr::from_csr(&a, 4, 4);
        let mut vs = b.values().to_vec();
        vs.pop();
        let err = Bcsr::<F16>::try_from_raw(
            a.nrows(), a.ncols(), 4, 4,
            b.row_ptr().to_vec(), b.col_idx().to_vec(), vs, b.nnz(),
        ).unwrap_err();
        prop_assert_eq!(err.codes(), vec![DiagCode::ArityMismatch]);
    }

    #[test]
    fn inflated_nnz_fires_f011(a in nonempty_matrix()) {
        let b = Bcsr::from_csr(&a, 4, 4);
        let err = Bcsr::<F16>::try_from_raw(
            a.nrows(), a.ncols(), 4, 4,
            b.row_ptr().to_vec(), b.col_idx().to_vec(), b.values().to_vec(),
            b.values().len() + 1,
        ).unwrap_err();
        prop_assert_eq!(err.codes(), vec![DiagCode::NnzInconsistent]);
    }

    // ---- Permutation mutations ----

    #[test]
    fn out_of_range_image_fires_f012(n in 2usize..50, seed in 0u64..1000, pick in 0usize..1000) {
        let mut idx = shuffled(n, seed);
        let i = pick % n;
        idx[i] = n + pick;
        let err = Permutation::try_from_vec(idx).unwrap_err();
        prop_assert_eq!(err.codes(), vec![DiagCode::PermOutOfRange]);
    }

    #[test]
    fn duplicate_image_fires_f013(n in 2usize..50, seed in 0u64..1000, pick in 0usize..1000) {
        let mut idx = shuffled(n, seed);
        let i = pick % (n - 1);
        idx[i + 1] = idx[i];
        let err = Permutation::try_from_vec(idx).unwrap_err();
        prop_assert_eq!(err.codes(), vec![DiagCode::PermDuplicate]);
    }

    #[test]
    fn length_mismatch_fires_f014(n in 1usize..50, seed in 0u64..1000) {
        let p = Permutation::from_vec(shuffled(n, seed));
        prop_assert!(verify_permutation(&p, Some(n)).is_empty());
        let diags = verify_permutation(&p, Some(n + 1));
        prop_assert_eq!(diags.codes(), vec![DiagCode::PermLengthMismatch]);
    }

    // ---- Raw-triplet mutations ----

    #[test]
    fn out_of_bounds_entry_fires_f016(a in nonempty_matrix(), pick in 0usize..1000) {
        let mut entries: Vec<(usize, usize, F16)> = a.iter().collect();
        let k = pick % entries.len();
        entries[k].0 += a.nrows();
        let diags = verify_entries(a.nrows(), a.ncols(), &entries);
        prop_assert_eq!(diags.codes(), vec![DiagCode::EntryOutOfBounds]);
    }

    #[test]
    fn duplicated_entry_warns_f017(a in nonempty_matrix(), pick in 0usize..1000) {
        let mut entries: Vec<(usize, usize, F16)> = a.iter().collect();
        let k = pick % entries.len();
        entries.push(entries[k]);
        let diags = verify_entries(a.nrows(), a.ncols(), &entries);
        prop_assert_eq!(diags.codes(), vec![DiagCode::DuplicateEntry]);
        // Duplicates are a warning (COO accumulates them), never an error.
        prop_assert!(!diags.has_errors());
    }

    // ---- Conversion roundtrips stay verifier-clean ----

    #[test]
    fn every_conversion_roundtrip_is_verifier_clean(
        a in nonempty_matrix(), h in 1usize..9, w in 1usize..9
    ) {
        prop_assert!(verify_csr(&a).is_empty());

        let bcsr = Bcsr::from_csr(&a, h, w);
        prop_assert!(verify_bcsr(&bcsr).is_empty());
        let back = bcsr.to_csr();
        prop_assert!(verify_csr(&back).is_empty());
        prop_assert_eq!(&back, &a);

        let coo = a.to_coo();
        prop_assert!(verify_coo(&coo).is_empty());
        prop_assert!(verify_csr(&coo.to_csr()).is_empty());

        prop_assert!(verify_csc(&Csc::from_csr(&a)).is_empty());
        prop_assert!(verify_ell(&Ell::from_csr(&a)).is_empty());
    }

    #[test]
    fn srbcrs_conversion_is_verifier_clean(
        a in nonempty_matrix(), v in 1usize..10, s in 1usize..6
    ) {
        let sr = SrBcrs::from_csr(&a.cast::<i16>(), v, s);
        prop_assert!(verify_srbcrs(&sr).is_empty());
        prop_assert!(verify_csr(&sr.to_csr()).is_empty());
    }
}

// ---------------------------------------------------------------------
// Concurrency codes C001–C008: mutate one aspect of a correct protocol
// ---------------------------------------------------------------------

mod concurrency {
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    use proptest::prelude::*;
    use smat_sanitize::sync::{AtomicBool, Condvar, Mutex};
    use smat_sanitize::{model, DiagCode, DiagnosticsExt, LockOrderGraph, ModelConfig};

    use crate::shuffled;

    /// A random *acyclic* lock-order graph: nodes `0..n` are a valid
    /// global acquisition order and every generated edge points forward
    /// along it, plus its forward edge list. The analyzer must accept any
    /// such graph; reversing any single edge must make it reject.
    fn random_dag(n: usize, seed: u64) -> (LockOrderGraph, Vec<(usize, usize)>) {
        let mut g = LockOrderGraph::new();
        for i in 0..n {
            g.add_node(format!("lock{i}"));
        }
        let mut edges = Vec::new();
        let picks = shuffled(n * n, seed);
        for &p in picks.iter().take(2 * n) {
            let (a, b) = (p / n, p % n);
            if a < b {
                g.add_edge(a, b);
                edges.push((a, b));
            }
        }
        if edges.is_empty() {
            g.add_edge(0, n - 1);
            edges.push((0, n - 1));
        }
        (g, edges)
    }

    /// The wait protocol under the model checker: when `under_mutex` the
    /// predicate is checked (and re-checked) while holding the mutex —
    /// correct; the mutation samples it through an atomic *before* taking
    /// the mutex, opening the classic lost-wakeup window.
    fn wait_protocol(under_mutex: bool, seed: u64) -> smat_sanitize::ModelReport {
        let cfg = ModelConfig {
            seed,
            ..ModelConfig::named("mutation.wait")
        };
        model::check(cfg, move || {
            let flag = Arc::new(AtomicBool::new(false));
            let pair = Arc::new((Mutex::labeled("mutation.wait.m", false), Condvar::new()));
            let (flag2, pair2) = (Arc::clone(&flag), Arc::clone(&pair));
            let waiter = model::spawn(move || {
                let (m, cv) = &*pair2;
                if under_mutex {
                    let mut g = m.lock_or_recover();
                    while !*g {
                        g = cv.wait(g);
                    }
                } else if !flag2.load(Ordering::SeqCst) {
                    // MUTATION: predicate sampled outside the mutex and
                    // never re-checked under it.
                    let g = m.lock_or_recover();
                    let _g = cv.wait(g);
                }
            });
            let signaler = model::spawn(move || {
                let (m, cv) = &*pair;
                *m.lock_or_recover() = true;
                flag.store(true, Ordering::SeqCst);
                cv.notify_all();
            });
            signaler.join();
            drop(waiter);
        })
    }

    /// Two increments of a shared counter under the model checker: the
    /// correct version holds the mutex across the whole read-modify-write;
    /// the mutation releases it between the read and the write.
    fn rmw_protocol(atomic_rmw: bool, seed: u64) -> smat_sanitize::ModelReport {
        let cfg = ModelConfig {
            seed,
            ..ModelConfig::named("mutation.rmw")
        };
        model::check(cfg, move || {
            let n = Arc::new(Mutex::labeled("mutation.rmw.n", 0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    model::spawn(move || {
                        if atomic_rmw {
                            *n.lock_or_recover() += 1;
                        } else {
                            // MUTATION: lock dropped between read and write.
                            let v = *n.lock_or_recover();
                            model::yield_now();
                            *n.lock_or_recover() = v + 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*n.lock_or_recover(), 2, "lost update");
        })
    }

    /// Two threads taking two locks under the model checker: consistent
    /// acquisition order when `consistent`, the AB-BA mutation otherwise.
    fn two_lock_protocol(consistent: bool, seed: u64) -> smat_sanitize::ModelReport {
        let cfg = ModelConfig {
            seed,
            ..ModelConfig::named("mutation.two_lock")
        };
        model::check(cfg, move || {
            let a = Arc::new(Mutex::labeled("mutation.two_lock.a", ()));
            let b = Arc::new(Mutex::labeled("mutation.two_lock.b", ()));
            let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = model::spawn(move || {
                let _ga = a1.lock_or_recover();
                let _gb = b1.lock_or_recover();
            });
            let t2 = model::spawn(move || {
                if consistent {
                    let _ga = a.lock_or_recover();
                    let _gb = b.lock_or_recover();
                } else {
                    // MUTATION: contradicting acquisition order.
                    let _gb = b.lock_or_recover();
                    let _ga = a.lock_or_recover();
                }
            });
            t1.join();
            t2.join();
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        // ---- C001 / C004: lock-order graph mutations ----

        #[test]
        fn reversing_one_dag_edge_fires_c001(
            n in 3usize..10, seed in 0u64..10_000, pick in 0usize..1000
        ) {
            let (mut g, edges) = random_dag(n, seed);
            prop_assert!(g.analyze().is_empty(), "forward-ordered graph is clean");
            let (a, b) = edges[pick % edges.len()];
            g.add_edge(b, a);
            prop_assert_eq!(g.analyze().codes(), vec![DiagCode::LockOrderCycle]);
        }

        #[test]
        fn adding_one_self_edge_fires_c004(
            n in 3usize..10, seed in 0u64..10_000, pick in 0usize..1000
        ) {
            let (mut g, _) = random_dag(n, seed);
            g.add_edge(pick % n, pick % n);
            let diags = g.analyze();
            prop_assert_eq!(diags.codes(), vec![DiagCode::DoubleAcquire]);
            prop_assert!(diags[0].message.contains(&format!("lock{}", pick % n)));
        }

        // ---- C005: acquisition-order mutation under the model ----

        #[test]
        fn reversing_the_acquisition_order_fires_c005(seed in 0u64..10_000) {
            let clean = two_lock_protocol(true, seed);
            prop_assert!(clean.is_clean(), "{clean:?}");
            let buggy = two_lock_protocol(false, seed);
            prop_assert!(
                buggy.findings.codes().contains(&DiagCode::ModelDeadlock),
                "expected C005 in {buggy:?}"
            );
        }

        // ---- C006: predicate-outside-the-mutex mutation ----

        #[test]
        fn hoisting_the_predicate_out_of_the_mutex_fires_c006(seed in 0u64..10_000) {
            let clean = wait_protocol(true, seed);
            prop_assert!(clean.is_clean(), "{clean:?}");
            prop_assert!(clean.exhausted, "{}", clean.summary());
            let buggy = wait_protocol(false, seed);
            prop_assert!(
                buggy.findings.codes().contains(&DiagCode::ModelLostWakeup),
                "expected C006 in {buggy:?}"
            );
        }

        // ---- C007: splitting the read-modify-write mutation ----

        #[test]
        fn splitting_the_rmw_critical_section_fires_c007(seed in 0u64..10_000) {
            let clean = rmw_protocol(true, seed);
            prop_assert!(clean.is_clean(), "{clean:?}");
            let buggy = rmw_protocol(false, seed);
            prop_assert!(
                buggy.findings.codes().contains(&DiagCode::ModelInvariantViolation),
                "expected C007 in {buggy:?}"
            );
        }

        // ---- C008: shrinking the schedule budget until it truncates ----

        #[test]
        fn shrinking_the_schedule_budget_fires_the_c008_note(
            budget in 1usize..4, seed in 0u64..10_000
        ) {
            let run = |max_schedules| {
                let cfg = ModelConfig {
                    max_schedules,
                    random_walks: 2,
                    seed,
                    ..ModelConfig::named("mutation.budget")
                };
                model::check(cfg, || {
                    let n = Arc::new(smat_sanitize::sync::AtomicU32::new(0));
                    let hs: Vec<_> = (0..3)
                        .map(|_| {
                            let n = Arc::clone(&n);
                            model::spawn(move || {
                                n.fetch_add(1, Ordering::SeqCst);
                            })
                        })
                        .collect();
                    for h in hs {
                        h.join();
                    }
                })
            };
            let generous = run(4096);
            prop_assert!(generous.exhausted, "{}", generous.summary());
            prop_assert!(generous.findings.is_empty(), "{generous:?}");
            let truncated = run(budget);
            prop_assert!(!truncated.exhausted);
            prop_assert_eq!(
                truncated.findings.codes(),
                vec![DiagCode::ModelExplorationTruncated]
            );
            prop_assert!(truncated.is_clean(), "a C008 note is not a failure");
        }
    }

    // C002 and C003 are runtime findings of the process-global lockdep
    // engine, so both scenarios live in one sequential test: enabling the
    // engine is process-wide and two concurrent enable/reset cycles would
    // race. The mutation in both is the same single aspect: a blocking
    // wait entered while a lock the wakeup path needs is still held.
    #[test]
    fn blocking_while_holding_a_lock_fires_c002_and_c003() {
        smat_sanitize::reset();
        smat_sanitize::enable();

        // C003: a park-style wait checkpoint with a checked lock held.
        let held = Mutex::labeled("mutation.park.held", ());
        {
            let _g = held.lock_or_recover();
            smat_sanitize::check_park("mutation.park");
        }

        // C002: a condvar wait entered while a *different* mutex is held.
        // The notifier hammers notify_all so the waiter always wakes up
        // regardless of how the two threads interleave.
        let outer = Mutex::labeled("mutation.cv.outer", ());
        let pair = Arc::new((Mutex::labeled("mutation.cv.inner", ()), Condvar::new()));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let (pair2, done2) = (Arc::clone(&pair), Arc::clone(&done));
        let notifier = std::thread::spawn(move || {
            while !done2.load(Ordering::SeqCst) {
                pair2.1.notify_all();
                std::thread::yield_now();
            }
        });
        {
            let _o = outer.lock_or_recover();
            let g = pair.0.lock_or_recover();
            let _g = pair.1.wait(g);
        }
        done.store(true, Ordering::SeqCst);
        notifier.join().unwrap();

        smat_sanitize::disable();
        let findings = smat_sanitize::report();
        smat_sanitize::reset();
        let codes = findings.codes();
        assert!(
            codes.contains(&DiagCode::LockHeldAcrossPark),
            "expected C003 in {findings:?}"
        );
        assert!(
            codes.contains(&DiagCode::CondvarWaitHoldingLock),
            "expected C002 in {findings:?}"
        );
    }
}
