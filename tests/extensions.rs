//! Integration tests of the extensions beyond the paper's minimal scope:
//! BLAS-style epilogues, SpMV, autotuning, the bisection reorderer, the
//! Sputnik-like fifth engine, and the roofline profile.

use smat::{autotune, SmatConfig, TuneSpace};
use smat_formats::{Csr, Dense, Element};
use smat_gpusim::{Bound, Gpu};
use smat_reorder::ReorderAlgorithm;
use smat_repro::baselines::SputnikLike;
use smat_repro::prelude::*;
use smat_repro::workloads;

#[test]
fn axpby_matches_reference_on_mimics() {
    for name in ["rma10", "dc2"] {
        let a: Csr<F16> = workloads::by_name(name).unwrap().generate(0.003);
        let b = workloads::dense_b::<F16>(a.ncols(), 8);
        let c0 = Dense::from_fn(a.nrows(), 8, |i, j| {
            F16::from_f64(((i * 2 + j) % 5) as f64 - 2.0)
        });
        let engine = Smat::prepare(&a, SmatConfig::default());
        let run = engine.spmm_axpby(&b, &c0, 3.0, -2.0);
        let prod = a.spmm_reference(&b);
        let want = Dense::from_fn(a.nrows(), 8, |i, j| {
            F16::from_f64(3.0 * prod.get(i, j).to_f64() - 2.0 * c0.get(i, j).to_f64())
        });
        assert_eq!(run.c, want, "axpby on {name}");
    }
}

#[test]
fn spmv_agrees_with_dasp_spmv() {
    let gpu = Gpu::a100();
    let a: Csr<F16> = workloads::by_name("cant").unwrap().generate(0.003);
    let x: Vec<F16> = (0..a.ncols())
        .map(|i| F16::from_f64(((i % 7) as f64) - 3.0))
        .collect();
    let engine = Smat::prepare(&a, SmatConfig::default());
    let (y, _) = engine.spmv(&x);

    let bx = Dense::from_vec(a.ncols(), 1, x);
    let (_, dasp_y) = smat_repro::baselines::DaspLike::new(&gpu, &a)
        .spmm(&bx)
        .unwrap();
    for (i, &v) in y.iter().enumerate() {
        assert_eq!(v, dasp_y.get(i, 0), "row {i}");
    }
}

#[test]
fn autotuned_config_is_never_slower_than_default() {
    for name in ["cop20k_A", "conf5_4-8x8"] {
        let a: Csr<F16> = workloads::by_name(name).unwrap().generate(0.005);
        let report = autotune(&a, 8, &SmatConfig::default(), &TuneSpace::default());
        let s = report
            .speedup_over_default()
            .expect("default configuration is in the space");
        assert!(s >= 1.0 - 1e-9, "{name}: tuner regressed by {s}");
        // And the winner still computes the right product.
        let b = workloads::dense_b::<F16>(a.ncols(), 8);
        let run = Smat::prepare(&a, report.best).spmm(&b);
        assert_eq!(run.c, a.spmm_reference(&b), "{name}");
    }
}

#[test]
fn bisection_reordering_helps_scrambled_mesh() {
    let a: Csr<F16> = workloads::by_name("consph").unwrap().generate(0.01);
    let (_, effect) = smat_reorder::evaluate_reordering(&a, ReorderAlgorithm::Bisection, 16, 16);
    assert!(
        effect.block_reduction() > 1.3,
        "bisection reduction {}",
        effect.block_reduction()
    );
    // And it preserves the product through the pipeline.
    let b = workloads::dense_b::<F16>(a.ncols(), 8);
    let cfg = SmatConfig {
        reorder: ReorderAlgorithm::Bisection,
        ..SmatConfig::default()
    };
    assert_eq!(Smat::prepare(&a, cfg).spmm(&b).c, a.spmm_reference(&b));
}

#[test]
fn sputnik_agrees_and_brackets_cusparse_from_above() {
    // Sputnik is the strongest CUDA-core baseline: it must beat cuSPARSE
    // everywhere, and lose to SMaT where blocks densify (mip1); on low-fill
    // meshes the two are near parity — both are traffic-bound at N=8.
    let gpu = Gpu::a100();
    let a: Csr<F16> = workloads::by_name("mip1").unwrap().generate(0.01);
    let b = workloads::dense_b::<F16>(a.ncols(), 8);
    let want = a.spmm_reference(&b);
    let (sputnik_res, sputnik_c) = SputnikLike::new(&gpu, &a).spmm(&b).unwrap();
    assert_eq!(sputnik_c, want);
    let (cusparse_res, _) = smat_repro::baselines::CusparseLike::new(&gpu, &a)
        .spmm(&b)
        .unwrap();
    let smat_ms = Smat::prepare(&a, SmatConfig::default())
        .spmm(&b)
        .report
        .elapsed_ms();
    assert!(
        sputnik_res.time_ms < cusparse_res.time_ms,
        "sputnik should beat cuSPARSE"
    );
    assert!(
        smat_ms < sputnik_res.time_ms,
        "SMaT ({smat_ms}) should beat Sputnik ({}) on blockable mip1",
        sputnik_res.time_ms
    );
}

#[test]
fn roofline_profile_classifies_spmm_regimes() {
    // Tall-skinny SpMM (N=8) on the simulated A100 is memory-system-bound,
    // never compute-bound — the Fig. 9a mechanism.
    let a = workloads::band::<F16>(1024, 128);
    let b = workloads::dense_b::<F16>(1024, 8);
    let cfg = SmatConfig {
        reorder: ReorderAlgorithm::Identity,
        ..SmatConfig::default()
    };
    let run = Smat::prepare(&a, cfg).spmm(&b);
    let bound = run.report.launch.profile.bound();
    assert_ne!(bound, Bound::Compute, "N=8 SpMM can't be compute-bound");
    // Wider N amortizes the A traffic and launch overhead: effective
    // GFLOP/s must grow substantially (the Fig. 9a -> 9b shift).
    let b128 = workloads::dense_b::<F16>(1024, 128);
    let cfg = SmatConfig {
        reorder: ReorderAlgorithm::Identity,
        ..SmatConfig::default()
    };
    let run128 = Smat::prepare(&a, cfg).spmm(&b128);
    assert!(
        run128.report.gflops() > run.report.gflops() * 1.5,
        "N=128 ({}) must be far more efficient than N=8 ({})",
        run128.report.gflops(),
        run.report.gflops()
    );
}

#[test]
fn i8_block_16x32_runs_the_wide_k_mma_shape() {
    let a32: Csr<f32> = workloads::random_uniform(128, 128, 0.9, 31);
    let a: Csr<i8> = a32.cast();
    let b = Dense::from_fn(128, 8, |i, j| {
        <i8 as Element>::from_f64(((i + j) % 5) as f64 - 2.0)
    });
    let cfg = SmatConfig {
        block_h: 16,
        block_w: 32,
        ..SmatConfig::default()
    };
    let run = Smat::prepare(&a, cfg).spmm(&b);
    assert_eq!(run.c, a.spmm_reference(&b));
}

#[test]
fn tune_space_prefers_identity_on_band_matrices() {
    // conf5-like band input: reordering can't help, and the tuner should
    // not pay for it.
    let a = workloads::band::<F16>(512, 8);
    let report = autotune(&a, 8, &SmatConfig::default(), &TuneSpace::default());
    let identity_best = report
        .trials
        .iter()
        .filter(|t| t.reorder == "original")
        .map(|t| t.time_ms)
        .fold(f64::INFINITY, f64::min);
    let overall_best = report
        .trials
        .iter()
        .map(|t| t.time_ms)
        .fold(f64::INFINITY, f64::min);
    assert!(
        identity_best <= overall_best * 1.05,
        "identity should be on the Pareto front for bands"
    );
}

#[test]
fn balanced_schedule_rescues_dc2() {
    // §VI-E: the static 2D schedule is dc2's problem; LPT pre-balancing
    // (a persistent-kernel style schedule) must recover a large part of
    // the loss without changing the result.
    // B must be wide enough that each block row spans several warps: with a
    // single 8-column tile the heaviest block row is one warp, which lands
    // alone on an SM even round-robin, and no assignment can beat that
    // single-warp lower bound.
    let a: Csr<F16> = workloads::by_name("dc2").unwrap().generate(0.02);
    let b = workloads::dense_b::<F16>(a.ncols(), 64);
    let mk = |schedule| SmatConfig {
        schedule,
        ..SmatConfig::default()
    };
    let static_run = Smat::prepare(&a, mk(Schedule::Static2D)).spmm(&b);
    let balanced_run = Smat::prepare(&a, mk(Schedule::BalancedGreedy)).spmm(&b);
    assert_eq!(static_run.c, balanced_run.c, "schedule must not change C");
    assert!(
        balanced_run.report.elapsed_ms() < static_run.report.elapsed_ms(),
        "balanced {} must beat static {} on dc2",
        balanced_run.report.elapsed_ms(),
        static_run.report.elapsed_ms()
    );
    assert!(balanced_run.report.launch.sm_imbalance() < static_run.report.launch.sm_imbalance());
}

#[test]
fn h100_speedup_tracks_bandwidth_not_compute() {
    // SpMM at N=8 is bandwidth-bound: moving to the H100 model must speed
    // it up by roughly the bandwidth ratio (~2.2x), far below the ~3.2x
    // Tensor Core ratio.
    let a: Csr<F16> = workloads::by_name("consph").unwrap().generate(0.01);
    let b = workloads::dense_b::<F16>(a.ncols(), 8);
    let run_on = |device: DeviceConfig| {
        let cfg = SmatConfig {
            device,
            ..SmatConfig::default()
        };
        Smat::prepare(&a, cfg).spmm(&b).report.gflops()
    };
    let a100 = run_on(DeviceConfig::a100_sxm4_40gb());
    let h100 = run_on(DeviceConfig::h100_sxm5_80gb());
    let speedup = h100 / a100;
    assert!(
        (1.2..=2.6).contains(&speedup),
        "H100 speedup {speedup} should track the bandwidth ratio"
    );
}
